"""Typed metrics: counters, gauges, and histograms with labels.

A :class:`MetricsRegistry` is the single home for the run tallies that
used to live scattered across ``runtime/metrics.py`` (stage timers),
``SolveDiagnostics`` (escalation rungs), ``ContractReport`` (violation
histograms) and the supervisor ``RunReport`` (retries/quarantines).
The legacy BENCH/report fields survive as *views* computed from a
registry (see :meth:`repro.runtime.metrics.SweepMetrics.registry`), so
downstream consumers keep their schema while new consumers get one
queryable, exportable store.

Everything here is dependency-free stdlib; rendering follows the
Prometheus text exposition format so a node_exporter textfile collector
can scrape snapshots directly.

Two serving-stack extensions ride on the same types:

* **Buckets** — a :class:`Histogram` constructed with ``buckets=...``
  keeps cumulative per-bucket counts (Prometheus ``_bucket{le=...}``
  rendering, always monotone, closed by ``+Inf``) alongside the
  count/sum/min/max summary, and can estimate quantiles from them.
  The bucket-free default stays a pure summary — sweep BENCH files
  keep their shape.
* **Merge + wire form** — every metric can :meth:`merge` a peer of the
  same type, and a :class:`MetricsRegistry` round-trips through a
  plain-JSON wire form (:meth:`~MetricsRegistry.to_wire` /
  :meth:`~MetricsRegistry.from_wire`).  ``repro dash`` uses both to
  fold N replicas' scraped registries into one fleet-wide view whose
  counters are exact per-replica sums.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
]

LabelKey = Tuple[Tuple[str, str], ...]

#: Default latency buckets (seconds) for service-path histograms:
#: sub-millisecond cache hits through minute-scale supervised solves.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in key)
    return "{" + inner + "}"


@dataclass
class Counter:
    """A monotonically increasing sum, optionally split by labels.

    Mutators take a per-metric lock: the exploration service increments
    from both its event loop and ``to_thread`` solver threads, and a
    lost first-touch of a label key would silently undercount.
    """

    name: str
    help: str = ""
    _series: Dict[LabelKey, float] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def merge(self, other: "Counter") -> None:
        """Fold another counter's series into this one (sums add)."""
        with self._lock:
            for key, value in other.series().items():
                self._series[key] = self._series.get(key, 0.0) + value

    def value(self, **labels) -> float:
        return self._series.get(_label_key(labels), 0.0)

    def total(self) -> float:
        return sum(self.series().values())

    def series(self) -> Dict[LabelKey, float]:
        with self._lock:
            return dict(self._series)

    def by_label(self, label: str) -> Dict[str, float]:
        """Sum series grouped by one label's values."""
        out: Dict[str, float] = {}
        for key, value in self._series.items():
            for name, lv in key:
                if name == label:
                    out[lv] = out.get(lv, 0.0) + value
        return out

    def to_prometheus(self, prefix: str) -> List[str]:
        full = f"{prefix}{self.name}"
        lines = []
        if self.help:
            lines.append(f"# HELP {full} {self.help}")
        lines.append(f"# TYPE {full} counter")
        if not self._series:
            lines.append(f"{full} 0")
        for key in sorted(self._series):
            lines.append(f"{full}{_render_labels(key)} {self._series[key]:.9g}")
        return lines


@dataclass
class Gauge:
    """A point-in-time value that can move either way."""

    name: str
    help: str = ""
    _series: Dict[LabelKey, float] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def merge(self, other: "Gauge") -> None:
        """Fold another gauge in (values add — fleet totals semantics)."""
        with self._lock:
            for key, value in other.series().items():
                self._series[key] = self._series.get(key, 0.0) + value

    def value(self, **labels) -> float:
        return self._series.get(_label_key(labels), 0.0)

    def series(self) -> Dict[LabelKey, float]:
        return dict(self._series)

    def to_prometheus(self, prefix: str) -> List[str]:
        full = f"{prefix}{self.name}"
        lines = []
        if self.help:
            lines.append(f"# HELP {full} {self.help}")
        lines.append(f"# TYPE {full} gauge")
        if not self._series:
            lines.append(f"{full} 0")
        for key in sorted(self._series):
            lines.append(f"{full}{_render_labels(key)} {self._series[key]:.9g}")
        return lines


@dataclass
class _HistogramSeries:
    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    #: Per-bucket (non-cumulative) counts, parallel to the histogram's
    #: ``buckets`` tuple plus one overflow slot; empty when bucket-free.
    bucket_counts: List[int] = field(default_factory=list)

    def observe(self, value: float, buckets: Tuple[float, ...]) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if buckets:
            if not self.bucket_counts:
                self.bucket_counts = [0] * (len(buckets) + 1)
            self.bucket_counts[bisect_left(buckets, value)] += 1

    def cumulative(self) -> List[int]:
        """Cumulative bucket counts (monotone; last == observations)."""
        out: List[int] = []
        running = 0
        for n in self.bucket_counts:
            running += n
            out.append(running)
        return out


@dataclass
class Histogram:
    """Count / sum / min / max per label set, with optional buckets.

    Bucket-free (the default) it is a pure summary: the quantities the
    BENCH schema needs are totals and counts, and the full sample
    distribution of a traced run already lives in its spans.  The
    serving stack constructs latency histograms with ``buckets=...``
    (upper bounds, ascending) — those additionally keep cumulative
    bucket counts, render as a true Prometheus histogram
    (``_bucket{le="..."}`` closed by ``+Inf``), and estimate quantiles
    for the fleet dashboard.
    """

    name: str
    help: str = ""
    unit: str = "seconds"
    buckets: Tuple[float, ...] = ()
    _series: Dict[LabelKey, _HistogramSeries] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.buckets = tuple(float(b) for b in self.buckets)
        if list(self.buckets) != sorted(set(self.buckets)):
            raise ValueError(
                f"histogram {self.name} buckets must be strictly "
                f"ascending, got {self.buckets}"
            )

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries()
            series.observe(float(value), self.buckets)

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in (bucket layouts must agree)."""
        if tuple(other.buckets) != self.buckets:
            raise ValueError(
                f"cannot merge histogram {self.name}: bucket layout "
                f"{other.buckets} != {self.buckets}"
            )
        with self._lock:
            for key, theirs in other.series().items():
                series = self._series.get(key)
                if series is None:
                    series = self._series[key] = _HistogramSeries()
                series.count += theirs.count
                series.total += theirs.total
                series.minimum = min(series.minimum, theirs.minimum)
                series.maximum = max(series.maximum, theirs.maximum)
                if theirs.bucket_counts:
                    if not series.bucket_counts:
                        series.bucket_counts = [0] * len(theirs.bucket_counts)
                    for i, n in enumerate(theirs.bucket_counts):
                        series.bucket_counts[i] += n

    def quantile(self, q: float, **labels) -> Optional[float]:
        """Estimate the q-quantile from bucket counts (None if empty).

        Linear interpolation within the winning bucket, the standard
        Prometheus ``histogram_quantile`` estimate.  Labels select one
        series; with no labels and several series, their buckets are
        summed first (the fleet-wide view).
        """
        if not self.buckets:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if labels:
            series = self._series.get(_label_key(labels))
            counts = list(series.bucket_counts) if series else []
        else:
            counts = [0] * (len(self.buckets) + 1)
            for series in self._series.values():
                for i, n in enumerate(series.bucket_counts):
                    counts[i] += n
        total = sum(counts)
        if total == 0:
            return None
        rank = q * total
        running = 0.0
        for i, n in enumerate(counts):
            if running + n >= rank and n > 0:
                lower = self.buckets[i - 1] if i > 0 else 0.0
                upper = (
                    self.buckets[i] if i < len(self.buckets) else self.buckets[-1]
                )
                return lower + (upper - lower) * ((rank - running) / n)
            running += n
        return self.buckets[-1]

    def count(self, **labels) -> int:
        series = self._series.get(_label_key(labels))
        return series.count if series else 0

    def sum(self, **labels) -> float:
        series = self._series.get(_label_key(labels))
        return series.total if series else 0.0

    def total_sum(self) -> float:
        return sum(s.total for s in self._series.values())

    def total_count(self) -> int:
        return sum(s.count for s in self._series.values())

    def sum_by_label(self, label: str) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for key, series in self._series.items():
            for name, lv in key:
                if name == label:
                    out[lv] = out.get(lv, 0.0) + series.total
        return out

    def count_by_label(self, label: str) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for key, series in self._series.items():
            for name, lv in key:
                if name == label:
                    out[lv] = out.get(lv, 0) + series.count
        return out

    def series(self) -> Dict[LabelKey, _HistogramSeries]:
        return dict(self._series)

    def to_prometheus(self, prefix: str) -> List[str]:
        full = f"{prefix}{self.name}_{self.unit}"
        lines = []
        if self.help:
            lines.append(f"# HELP {full} {self.help}")
        lines.append(f"# TYPE {full} {'histogram' if self.buckets else 'summary'}")
        for key in sorted(self._series):
            series = self._series[key]
            labels = _render_labels(key)
            if self.buckets:
                cumulative = series.cumulative() or [0] * (len(self.buckets) + 1)
                for bound, running in zip(self.buckets, cumulative):
                    le = _render_labels(key + (("le", f"{bound:g}"),))
                    lines.append(f"{full}_bucket{le} {running}")
                inf = _render_labels(key + (("le", "+Inf"),))
                lines.append(f"{full}_bucket{inf} {series.count}")
            lines.append(f"{full}_sum{labels} {series.total:.9g}")
            lines.append(f"{full}_count{labels} {series.count}")
        if not self._series:
            lines.append(f"{full}_sum 0")
            lines.append(f"{full}_count 0")
        return lines


class MetricsRegistry:
    """A named collection of typed metrics with one export surface."""

    def __init__(self, namespace: str = "repro"):
        self.namespace = namespace
        self._metrics: Dict[str, Any] = {}
        self._lock = threading.Lock()

    # -- registration ---------------------------------------------------
    def _register(self, kind, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {kind.__name__}"
                    )
                return existing
            metric = kind(name=name, help=help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        unit: str = "seconds",
        buckets: Tuple[float, ...] = (),
    ) -> Histogram:
        return self._register(Histogram, name, help, unit=unit, buckets=buckets)

    def get(self, name: str) -> Optional[Any]:
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def metrics(self) -> Iterable[Any]:
        return [self._metrics[name] for name in sorted(self._metrics)]

    # -- export ---------------------------------------------------------
    def to_prometheus(self) -> str:
        """Render every metric in Prometheus text exposition format."""
        prefix = f"{self.namespace}_" if self.namespace else ""
        lines: List[str] = []
        for metric in self.metrics():
            lines.extend(metric.to_prometheus(prefix))
        return "\n".join(lines) + "\n"

    def snapshot(self) -> Dict[str, Any]:
        """A plain-JSON dump of every series, for tests and debugging."""
        out: Dict[str, Any] = {}
        for metric in self.metrics():
            if isinstance(metric, Histogram):
                out[metric.name] = {
                    _render_labels(k) or "total": {
                        "count": s.count,
                        "sum": s.total,
                    }
                    for k, s in metric.series().items()
                }
            else:
                out[metric.name] = {
                    _render_labels(k) or "total": v for k, v in metric.series().items()
                }
        return out

    # -- merge + wire form ----------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold every metric of ``other`` into this registry.

        Unknown metrics are registered with the peer's shape (help,
        unit, buckets); known ones must match type — the same guard
        ``_register`` applies locally.  This is the fleet-aggregation
        primitive behind ``repro dash``.
        """
        for metric in other.metrics():
            if isinstance(metric, Counter):
                self.counter(metric.name, metric.help).merge(metric)
            elif isinstance(metric, Gauge):
                self.gauge(metric.name, metric.help).merge(metric)
            elif isinstance(metric, Histogram):
                self.histogram(
                    metric.name, metric.help, unit=metric.unit, buckets=metric.buckets
                ).merge(metric)
            else:  # pragma: no cover - registry only holds the three kinds
                raise TypeError(f"cannot merge metric of type {type(metric).__name__}")

    def to_wire(self) -> Dict[str, Any]:
        """A plain-JSON form that :meth:`from_wire` reconstructs exactly.

        Shipped in the service ``metrics`` response so ``repro dash``
        can merge replica registries without parsing Prometheus text.
        """
        metrics: List[Dict[str, Any]] = []
        for metric in self.metrics():
            entry: Dict[str, Any] = {"name": metric.name, "help": metric.help}
            if isinstance(metric, Histogram):
                entry["type"] = "histogram"
                entry["unit"] = metric.unit
                entry["buckets"] = list(metric.buckets)
                entry["series"] = [
                    {
                        "labels": dict(key),
                        "count": s.count,
                        "sum": s.total,
                        "min": None if s.count == 0 else s.minimum,
                        "max": None if s.count == 0 else s.maximum,
                        "bucket_counts": list(s.bucket_counts),
                    }
                    for key, s in sorted(metric.series().items())
                ]
            else:
                entry["type"] = "counter" if isinstance(metric, Counter) else "gauge"
                entry["series"] = [
                    {"labels": dict(key), "value": value}
                    for key, value in sorted(metric.series().items())
                ]
            metrics.append(entry)
        return {"namespace": self.namespace, "metrics": metrics}

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_wire` output."""
        registry = cls(namespace=str(payload.get("namespace", "repro")))
        for entry in payload.get("metrics", []):
            kind = entry.get("type")
            name = str(entry["name"])
            help_text = str(entry.get("help", ""))
            if kind == "histogram":
                metric = registry.histogram(
                    name,
                    help_text,
                    unit=str(entry.get("unit", "seconds")),
                    buckets=tuple(entry.get("buckets", ())),
                )
                for raw in entry.get("series", []):
                    key = _label_key(raw.get("labels", {}))
                    series = metric._series.setdefault(key, _HistogramSeries())
                    series.count = int(raw.get("count", 0))
                    series.total = float(raw.get("sum", 0.0))
                    series.minimum = (
                        math.inf if raw.get("min") is None else float(raw["min"])
                    )
                    series.maximum = (
                        -math.inf if raw.get("max") is None else float(raw["max"])
                    )
                    series.bucket_counts = [
                        int(n) for n in raw.get("bucket_counts", [])
                    ]
            elif kind in ("counter", "gauge"):
                metric = (
                    registry.counter(name, help_text)
                    if kind == "counter"
                    else registry.gauge(name, help_text)
                )
                for raw in entry.get("series", []):
                    key = _label_key(raw.get("labels", {}))
                    metric._series[key] = float(raw.get("value", 0.0))
            else:
                raise ValueError(f"unknown metric type in wire payload: {kind!r}")
        return registry
