"""Typed metrics: counters, gauges, and histograms with labels.

A :class:`MetricsRegistry` is the single home for the run tallies that
used to live scattered across ``runtime/metrics.py`` (stage timers),
``SolveDiagnostics`` (escalation rungs), ``ContractReport`` (violation
histograms) and the supervisor ``RunReport`` (retries/quarantines).
The legacy BENCH/report fields survive as *views* computed from a
registry (see :meth:`repro.runtime.metrics.SweepMetrics.registry`), so
downstream consumers keep their schema while new consumers get one
queryable, exportable store.

Everything here is dependency-free stdlib; rendering follows the
Prometheus text exposition format so a node_exporter textfile collector
can scrape snapshots directly.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in key)
    return "{" + inner + "}"


@dataclass
class Counter:
    """A monotonically increasing sum, optionally split by labels."""

    name: str
    help: str = ""
    _series: Dict[LabelKey, float] = field(default_factory=dict)

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self._series.get(_label_key(labels), 0.0)

    def total(self) -> float:
        return sum(self._series.values())

    def series(self) -> Dict[LabelKey, float]:
        return dict(self._series)

    def by_label(self, label: str) -> Dict[str, float]:
        """Sum series grouped by one label's values."""
        out: Dict[str, float] = {}
        for key, value in self._series.items():
            for name, lv in key:
                if name == label:
                    out[lv] = out.get(lv, 0.0) + value
        return out

    def to_prometheus(self, prefix: str) -> List[str]:
        full = f"{prefix}{self.name}"
        lines = []
        if self.help:
            lines.append(f"# HELP {full} {self.help}")
        lines.append(f"# TYPE {full} counter")
        if not self._series:
            lines.append(f"{full} 0")
        for key in sorted(self._series):
            lines.append(f"{full}{_render_labels(key)} {self._series[key]:.9g}")
        return lines


@dataclass
class Gauge:
    """A point-in-time value that can move either way."""

    name: str
    help: str = ""
    _series: Dict[LabelKey, float] = field(default_factory=dict)

    def set(self, value: float, **labels) -> None:
        self._series[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self._series.get(_label_key(labels), 0.0)

    def series(self) -> Dict[LabelKey, float]:
        return dict(self._series)

    def to_prometheus(self, prefix: str) -> List[str]:
        full = f"{prefix}{self.name}"
        lines = []
        if self.help:
            lines.append(f"# HELP {full} {self.help}")
        lines.append(f"# TYPE {full} gauge")
        if not self._series:
            lines.append(f"{full} 0")
        for key in sorted(self._series):
            lines.append(f"{full}{_render_labels(key)} {self._series[key]:.9g}")
        return lines


@dataclass
class _HistogramSeries:
    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value


@dataclass
class Histogram:
    """Summary-style histogram: count / sum / min / max per label set.

    Deliberately bucket-free: the quantities the BENCH schema needs are
    totals and counts, and the full sample distribution already lives in
    the trace spans, so buckets here would duplicate data.
    """

    name: str
    help: str = ""
    unit: str = "seconds"
    _series: Dict[LabelKey, _HistogramSeries] = field(default_factory=dict)

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries()
        series.observe(float(value))

    def count(self, **labels) -> int:
        series = self._series.get(_label_key(labels))
        return series.count if series else 0

    def sum(self, **labels) -> float:
        series = self._series.get(_label_key(labels))
        return series.total if series else 0.0

    def total_sum(self) -> float:
        return sum(s.total for s in self._series.values())

    def total_count(self) -> int:
        return sum(s.count for s in self._series.values())

    def sum_by_label(self, label: str) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for key, series in self._series.items():
            for name, lv in key:
                if name == label:
                    out[lv] = out.get(lv, 0.0) + series.total
        return out

    def count_by_label(self, label: str) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for key, series in self._series.items():
            for name, lv in key:
                if name == label:
                    out[lv] = out.get(lv, 0) + series.count
        return out

    def series(self) -> Dict[LabelKey, _HistogramSeries]:
        return dict(self._series)

    def to_prometheus(self, prefix: str) -> List[str]:
        full = f"{prefix}{self.name}_{self.unit}"
        lines = []
        if self.help:
            lines.append(f"# HELP {full} {self.help}")
        lines.append(f"# TYPE {full} summary")
        for key in sorted(self._series):
            series = self._series[key]
            labels = _render_labels(key)
            lines.append(f"{full}_sum{labels} {series.total:.9g}")
            lines.append(f"{full}_count{labels} {series.count}")
        if not self._series:
            lines.append(f"{full}_sum 0")
            lines.append(f"{full}_count 0")
        return lines


class MetricsRegistry:
    """A named collection of typed metrics with one export surface."""

    def __init__(self, namespace: str = "repro"):
        self.namespace = namespace
        self._metrics: Dict[str, Any] = {}
        self._lock = threading.Lock()

    # -- registration ---------------------------------------------------
    def _register(self, kind, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {kind.__name__}"
                    )
                return existing
            metric = kind(name=name, help=help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge, name, help)

    def histogram(self, name: str, help: str = "", unit: str = "seconds") -> Histogram:
        return self._register(Histogram, name, help, unit=unit)

    def get(self, name: str) -> Optional[Any]:
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def metrics(self) -> Iterable[Any]:
        return [self._metrics[name] for name in sorted(self._metrics)]

    # -- export ---------------------------------------------------------
    def to_prometheus(self) -> str:
        """Render every metric in Prometheus text exposition format."""
        prefix = f"{self.namespace}_" if self.namespace else ""
        lines: List[str] = []
        for metric in self.metrics():
            lines.extend(metric.to_prometheus(prefix))
        return "\n".join(lines) + "\n"

    def snapshot(self) -> Dict[str, Any]:
        """A plain-JSON dump of every series, for tests and debugging."""
        out: Dict[str, Any] = {}
        for metric in self.metrics():
            if isinstance(metric, Histogram):
                out[metric.name] = {
                    _render_labels(k) or "total": {
                        "count": s.count,
                        "sum": s.total,
                    }
                    for k, s in metric.series().items()
                }
            else:
                out[metric.name] = {
                    _render_labels(k) or "total": v for k, v in metric.series().items()
                }
        return out
