"""repro.obs — dependency-free tracing, metrics, and structured logging.

The observability layer for the reproduction: hierarchical spans from
the experiment entrypoint down to individual solver-escalation rungs
(:mod:`repro.obs.trace`), a typed metrics registry that the BENCH /
RunReport schemas are views over (:mod:`repro.obs.metrics`), JSON-line
logging (:mod:`repro.obs.logs`), trace/Chrome/Prometheus exporters
(:mod:`repro.obs.export`), and the ``repro trace`` profile analysis
(:mod:`repro.obs.profile`).  See docs/OBSERVABILITY.md.
"""

from .logs import LOG_ENV, JsonLineFormatter, configure_logging, get_logger
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import (
    TRACE_DIR_ENV,
    TRACE_ENV,
    TRACE_SCHEMA,
    Span,
    Tracer,
    activate_worker_context,
    configure,
    get_tracer,
    span,
)

__all__ = [
    "LOG_ENV",
    "JsonLineFormatter",
    "configure_logging",
    "get_logger",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TRACE_DIR_ENV",
    "TRACE_ENV",
    "TRACE_SCHEMA",
    "Span",
    "Tracer",
    "activate_worker_context",
    "configure",
    "get_tracer",
    "span",
]
