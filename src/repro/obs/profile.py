"""Trace analysis: span-tree reassembly and the ``repro trace`` report.

Loads the spans a run flushed (possibly from several worker processes),
stitches them back into one tree via parent ids, and derives the
numbers an engineer profiling a sweep actually wants:

* a flamegraph-style table of **self** vs **total** time per span name,
* the top-N slowest topology groups,
* attribution of retries, escalation-ladder rungs, and contract
  violations to the spans that incurred them,
* per-stage totals (build / factorize / solve / post / contracts)
  recomputed from spans alone — these must agree with the BENCH JSON's
  ``stage_totals`` (the acceptance bar is <1%, by construction they are
  the same measurements).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from .trace import Span

__all__ = [
    "SpanNode",
    "build_tree",
    "aggregate_by_name",
    "stage_totals_from_spans",
    "slowest_groups",
    "attribution",
    "render_profile",
]

#: Span names that map 1:1 onto BENCH stage timers.
STAGE_SPANS = ("build", "factorize", "solve", "post", "contracts")


@dataclass
class SpanNode:
    """One span plus its reassembled children."""

    span: Span
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def self_s(self) -> float:
        child_total = sum(c.span.duration_s for c in self.children)
        return max(0.0, self.span.duration_s - child_total)

    def walk(self) -> Iterable["SpanNode"]:
        yield self
        for child in self.children:
            yield from child.walk()


def build_tree(spans: Iterable[Span]) -> List[SpanNode]:
    """Reassemble spans into root trees (orphans become roots).

    Works across process boundaries: worker spans carry the parent id
    of the span that was live in the coordinator when the task was
    dispatched, so the forest collapses into one tree per run.
    """
    nodes: Dict[str, SpanNode] = {s.span_id: SpanNode(s) for s in spans}
    roots: List[SpanNode] = []
    for node in nodes.values():
        parent = nodes.get(node.span.parent_id) if node.span.parent_id else None
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: n.span.start_s)
    roots.sort(key=lambda n: n.span.start_s)
    return roots


@dataclass
class NameStats:
    name: str
    count: int = 0
    total_s: float = 0.0
    self_s: float = 0.0
    max_s: float = 0.0
    errors: int = 0


def aggregate_by_name(spans: Iterable[Span]) -> List[NameStats]:
    """Per-name totals, sorted by self time (the flamegraph table)."""
    stats: Dict[str, NameStats] = {}
    for root in build_tree(spans):
        for node in root.walk():
            span = node.span
            entry = stats.get(span.name)
            if entry is None:
                entry = stats[span.name] = NameStats(span.name)
            entry.count += 1
            entry.total_s += span.duration_s
            entry.self_s += node.self_s
            if span.duration_s > entry.max_s:
                entry.max_s = span.duration_s
            if span.status == "error":
                entry.errors += 1
    return sorted(stats.values(), key=lambda s: s.self_s, reverse=True)


def stage_totals_from_spans(spans: Iterable[Span]) -> Dict[str, float]:
    """Sum stage-span durations; keys follow BENCH ``stage_totals``."""
    totals = {name: 0.0 for name in STAGE_SPANS}
    for span in spans:
        if span.name in totals:
            totals[span.name] += span.duration_s
    return totals


@dataclass
class GroupProfile:
    key: str
    duration_s: float
    n_points: int
    cached: bool
    escalations: Dict[str, int] = field(default_factory=dict)
    escalation_s: Dict[str, float] = field(default_factory=dict)
    contract_violations: Dict[str, int] = field(default_factory=dict)
    retries: int = 0
    errors: int = 0


def _group_nodes(roots: List[SpanNode]) -> List[SpanNode]:
    out = []
    for root in roots:
        for node in root.walk():
            if node.span.name == "group":
                out.append(node)
    return out


def slowest_groups(spans: Iterable[Span], top: int = 10) -> List[GroupProfile]:
    """The ``top`` slowest topology groups, with per-group attribution.

    Retries surface naturally: a retried task produces several ``group``
    spans with the same key, so the slowest attempt is profiled and the
    attempt count is reported alongside.
    """
    roots = build_tree(spans)
    by_key: Dict[str, List[SpanNode]] = {}
    for node in _group_nodes(roots):
        key = str(node.span.attributes.get("key", node.span.span_id))
        by_key.setdefault(key, []).append(node)

    profiles: List[GroupProfile] = []
    for key, nodes in by_key.items():
        slowest = max(nodes, key=lambda n: n.span.duration_s)
        profile = GroupProfile(
            key=key,
            duration_s=sum(n.span.duration_s for n in nodes),
            n_points=int(slowest.span.attributes.get("n_points", 0)),
            cached=bool(slowest.span.attributes.get("cached", False)),
            retries=len(nodes) - 1,
        )
        for node in nodes:
            for sub in node.walk():
                span = sub.span
                if span.status == "error":
                    profile.errors += 1
                if span.name == "rung":
                    rung = str(span.attributes.get("rung", "?"))
                    # Batched direct solves emit one span covering many
                    # columns; "count" carries how many.
                    n = int(span.attributes.get("count", 1))
                    profile.escalations[rung] = (
                        profile.escalations.get(rung, 0) + n
                    )
                    profile.escalation_s[rung] = (
                        profile.escalation_s.get(rung, 0.0) + span.duration_s
                    )
                elif span.name == "contracts":
                    for name, count in (
                        span.attributes.get("violations") or {}
                    ).items():
                        profile.contract_violations[name] = (
                            profile.contract_violations.get(name, 0) + int(count)
                        )
        profiles.append(profile)
    profiles.sort(key=lambda p: p.duration_s, reverse=True)
    return profiles[:top]


@dataclass
class Attribution:
    """Run-wide retry / escalation / contract-violation rollup."""

    escalations: Dict[str, int] = field(default_factory=dict)
    escalation_s: Dict[str, float] = field(default_factory=dict)
    contract_violations: Dict[str, int] = field(default_factory=dict)
    contracts_s: float = 0.0
    retries: int = 0
    error_spans: int = 0


def attribution(spans: Iterable[Span]) -> Attribution:
    spans = list(spans)
    out = Attribution()
    group_attempts: Dict[str, int] = {}
    for span in spans:
        if span.status == "error":
            out.error_spans += 1
        if span.name == "rung":
            rung = str(span.attributes.get("rung", "?"))
            n = int(span.attributes.get("count", 1))
            out.escalations[rung] = out.escalations.get(rung, 0) + n
            out.escalation_s[rung] = out.escalation_s.get(rung, 0.0) + span.duration_s
        elif span.name == "contracts":
            out.contracts_s += span.duration_s
            for name, count in (span.attributes.get("violations") or {}).items():
                out.contract_violations[name] = (
                    out.contract_violations.get(name, 0) + int(count)
                )
        elif span.name == "group":
            key = str(span.attributes.get("key", span.span_id))
            group_attempts[key] = group_attempts.get(key, 0) + 1
    out.retries = sum(n - 1 for n in group_attempts.values() if n > 1)
    return out


def _fmt_s(value: float) -> str:
    return f"{value:.6f}" if value < 10 else f"{value:.3f}"


def render_profile(
    spans: Iterable[Span],
    top: int = 10,
    run_fingerprint: Optional[str] = None,
) -> str:
    """The full ``repro trace`` text report."""
    spans = list(spans)
    lines: List[str] = []
    header = f"trace profile: {len(spans)} spans"
    if run_fingerprint:
        header += f" · run {run_fingerprint}"
    lines.append(header)
    if not spans:
        return "\n".join(lines)

    lines.append("")
    lines.append("-- time by span name (self-time descending) --")
    lines.append(
        f"{'name':<16} {'count':>7} {'total_s':>12} {'self_s':>12} "
        f"{'max_s':>12} {'errors':>6}"
    )
    for stat in aggregate_by_name(spans):
        lines.append(
            f"{stat.name:<16} {stat.count:>7} {_fmt_s(stat.total_s):>12} "
            f"{_fmt_s(stat.self_s):>12} {_fmt_s(stat.max_s):>12} {stat.errors:>6}"
        )

    totals = stage_totals_from_spans(spans)
    lines.append("")
    lines.append("-- stage totals from spans (compare BENCH stage_totals) --")
    for name in STAGE_SPANS:
        lines.append(f"{name:<16} {_fmt_s(totals[name]):>12}")

    groups = slowest_groups(spans, top=top)
    if groups:
        lines.append("")
        lines.append(f"-- top {min(top, len(groups))} slowest topology groups --")
        lines.append(
            f"{'group':<44} {'total_s':>12} {'points':>7} {'retries':>7} "
            f"{'escalations':>24}"
        )
        for profile in groups:
            esc = (
                ",".join(
                    f"{k}:{v}" for k, v in sorted(profile.escalations.items())
                )
                or "-"
            )
            key = profile.key if len(profile.key) <= 44 else profile.key[:41] + "..."
            lines.append(
                f"{key:<44} {_fmt_s(profile.duration_s):>12} "
                f"{profile.n_points:>7} {profile.retries:>7} {esc:>24}"
            )

    rollup = attribution(spans)
    lines.append("")
    lines.append("-- attribution --")
    lines.append(f"retried group executions: {rollup.retries}")
    lines.append(f"error spans: {rollup.error_spans}")
    if rollup.escalations:
        esc = ", ".join(
            f"{k}: {v} ({_fmt_s(rollup.escalation_s.get(k, 0.0))}s)"
            for k, v in sorted(rollup.escalations.items())
        )
        lines.append(f"solver rungs: {esc}")
    else:
        lines.append("solver rungs: none recorded")
    if rollup.contract_violations:
        viol = ", ".join(
            f"{k}: {v}" for k, v in sorted(rollup.contract_violations.items())
        )
        lines.append(f"contract violations: {viol}")
    else:
        lines.append("contract violations: none")
    lines.append(f"contract check time: {_fmt_s(rollup.contracts_s)}s")
    return "\n".join(lines)
