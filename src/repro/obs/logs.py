"""Structured logging for the CLI and runtime.

One-line JSON records on stderr, level-controlled by ``--log-level`` or
the ``REPRO_LOG`` environment variable.  Replaces the bare ``print``
warnings that previously leaked from the supervisor and the CLI's
degraded-point notes, so long runs produce grep-able, timestamped,
machine-parsable diagnostics instead of interleaved prose.

Usage::

    from repro.obs import get_logger
    log = get_logger(__name__)
    log.warning("degraded points", extra={"count": 3, "command": "fig6"})
"""

from __future__ import annotations

import json
import logging
import os
import sys
import time
from typing import Optional

__all__ = ["LOG_ENV", "JsonLineFormatter", "configure_logging", "get_logger"]

#: Select the log level (``debug``/``info``/``warning``/``error``).
LOG_ENV = "REPRO_LOG"

_ROOT_LOGGER_NAME = "repro"
#: LogRecord attributes that are plumbing, not user payload.
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


class JsonLineFormatter(logging.Formatter):
    """Format each record as one JSON object per line.

    Anything passed via ``extra=`` that is not a stock LogRecord
    attribute is included verbatim, so call sites can attach structured
    fields (counts, fingerprints, topology keys) without string
    formatting.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 3),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED or key.startswith("_"):
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = record.exc_info[0].__name__
            payload["exc_msg"] = str(record.exc_info[1])
        return json.dumps(payload, sort_keys=False)

    def formatTime(self, record, datefmt=None):  # pragma: no cover - unused
        return time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(record.created))


def _resolve_level(level: Optional[str]) -> int:
    if not level:
        return logging.WARNING
    name = level.strip().upper()
    resolved = logging.getLevelName(name)
    if isinstance(resolved, int):
        return resolved
    return logging.WARNING


def configure_logging(level: Optional[str] = None, stream=None) -> logging.Logger:
    """Install the JSON handler on the ``repro`` logger (idempotent).

    ``level`` defaults to ``$REPRO_LOG``, then ``warning``.  Calling
    again just updates the level — handlers are never duplicated, so
    library users and repeated CLI invocations in one process are safe.
    """
    if level is None:
        level = os.environ.get(LOG_ENV)
    logger = logging.getLogger(_ROOT_LOGGER_NAME)
    logger.setLevel(_resolve_level(level))
    logger.propagate = False
    handler = next(
        (h for h in logger.handlers if getattr(h, "_repro_obs", False)), None
    )
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler._repro_obs = True
        handler.setFormatter(JsonLineFormatter())
        logger.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    return logger


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A child of the ``repro`` logger; configures the root on first use."""
    root = logging.getLogger(_ROOT_LOGGER_NAME)
    if not root.handlers:
        configure_logging()
    if not name or name == _ROOT_LOGGER_NAME:
        return root
    if name.startswith("repro."):
        return logging.getLogger(name)
    return root.getChild(name)
