"""Stack-level configuration: the example processor, TSV topologies and
C4 pad allocation (paper Sections 4.1-4.2, Table 2).

The paper's example system is a 40 nm dual-core ARM Cortex-A9 replicated
eight times into a single-layer 16-core processor: 1 GHz, 1 V, 7.6 W peak
and 44.12 mm^2 per layer, stacked 2-8 layers high.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from repro.config.technology import TSVTechnology, default_tsv
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_positive_int,
)


@dataclass(frozen=True)
class ProcessorSpec:
    """One silicon layer of the example many-core processor (Sec. 4.1)."""

    #: Number of cores on the layer (8x dual-core Cortex-A9).
    core_count: int = 16
    #: Total layer area (m^2).  McPAT: 44.12 mm^2.
    die_area: float = 44.12e-6
    #: Nominal per-layer supply voltage (V).
    vdd: float = 1.0
    #: Clock frequency (Hz).
    frequency: float = 1.0e9
    #: Peak layer power at nominal voltage (W).  McPAT: 7.6 W.
    peak_power: float = 7.6
    #: Fraction of peak power that is dynamic (the remainder is leakage).
    #: "100% imbalance means the low-power layers are idle and only
    #: consume leakage power", so the idle floor is the leakage fraction.
    #: 32% leakage is typical of 40 nm low-power cores and calibrates the
    #: Fig. 6 noise slope to the paper's quoted deltas.
    dynamic_fraction: float = 0.68

    def __post_init__(self) -> None:
        check_positive_int("core_count", self.core_count)
        check_positive("die_area", self.die_area)
        check_positive("vdd", self.vdd)
        check_positive("frequency", self.frequency)
        check_positive("peak_power", self.peak_power)
        check_fraction("dynamic_fraction", self.dynamic_fraction)

    @property
    def die_side(self) -> float:
        """Side length of the (square) die (m)."""
        return math.sqrt(self.die_area)

    @property
    def core_area(self) -> float:
        """Area of one core, including its share of uncore (m^2)."""
        return self.die_area / self.core_count

    @property
    def peak_core_power(self) -> float:
        """Peak power of one core (W)."""
        return self.peak_power / self.core_count

    @property
    def peak_current(self) -> float:
        """Peak layer current draw at nominal voltage (A)."""
        return self.peak_power / self.vdd

    @property
    def leakage_power(self) -> float:
        """Layer leakage power — the idle floor (W)."""
        return self.peak_power * (1.0 - self.dynamic_fraction)

    @property
    def dynamic_power(self) -> float:
        """Layer peak dynamic power (W)."""
        return self.peak_power * self.dynamic_fraction

    def layer_power(self, activity: float) -> float:
        """Layer power at dynamic activity factor ``activity`` in [0, 1]."""
        check_fraction("activity", activity)
        return self.leakage_power + activity * self.dynamic_power


@dataclass(frozen=True)
class TSVTopology:
    """A power-delivery TSV allocation (paper Table 2).

    Table 2 specifies each topology by TSV count per core; the quoted
    "effective pitch" and area overhead are derived quantities.  We treat
    the per-core count as the primary specification so the table's counts
    reproduce exactly, and re-derive pitch/overhead from the count and the
    keep-out-zone geometry.  (Table 2's Few-TSV quoted pitch of 240 um is
    not consistent with 110 TSVs per 2.76 mm^2 core under any simple
    area/pitch^2 reading; the count and the 0.4% overhead are consistent
    with each other, so we keep those.)
    """

    #: Human-readable name ("Dense", "Sparse", "Few").
    name: str
    #: Power-delivery TSVs per core (Vdd + GND combined), Table 2.
    tsvs_per_core: int

    def __post_init__(self) -> None:
        check_positive_int("tsvs_per_core", self.tsvs_per_core)
        if not self.name:
            raise ValueError("name must be non-empty")

    @property
    def vdd_tsvs_per_core(self) -> int:
        """TSVs assigned to the Vdd net (half the total, rounded down)."""
        return self.tsvs_per_core // 2

    @property
    def gnd_tsvs_per_core(self) -> int:
        """TSVs assigned to the GND net."""
        return self.tsvs_per_core - self.vdd_tsvs_per_core

    def effective_pitch(self, core_area: float) -> float:
        """Derived uniform placement pitch for this density (m)."""
        check_positive("core_area", core_area)
        return math.sqrt(core_area / self.tsvs_per_core)

    def area_overhead(self, core_area: float, tsv: TSVTechnology = None) -> float:
        """Fraction of core area blocked by the TSVs' keep-out zones."""
        tsv = tsv if tsv is not None else default_tsv()
        check_positive("core_area", core_area)
        return self.tsvs_per_core * tsv.koz_area / core_area


def dense_tsv() -> TSVTopology:
    """Table 2 "Dense" topology: 6650 TSVs/core, ~24% area overhead."""
    return TSVTopology(name="Dense", tsvs_per_core=6650)


def sparse_tsv() -> TSVTopology:
    """Table 2 "Sparse" topology: 1675 TSVs/core, ~6% area overhead."""
    return TSVTopology(name="Sparse", tsvs_per_core=1675)


def few_tsv() -> TSVTopology:
    """Table 2 "Few" topology: 110 TSVs/core, ~0.4% area overhead."""
    return TSVTopology(name="Few", tsvs_per_core=110)


#: The three Table 2 design points, keyed by name.
TSV_TOPOLOGIES: Dict[str, TSVTopology] = {
    "Dense": dense_tsv(),
    "Sparse": sparse_tsv(),
    "Few": few_tsv(),
}


@dataclass(frozen=True)
class PadAllocation:
    """How the C4 pad array is split between power delivery and I/O.

    ``power_fraction`` is the fraction of all pad sites used for power
    (split evenly between Vdd and GND), matching the 25/50/75/100%
    sweep of Fig. 5b.  For the voltage-stacked PDN the paper connects
    each Vdd pad to a single through-via stack and reports 32 Vdd pads
    per core for its TSV-lifetime study; ``vdd_pads_per_core_override``
    reproduces that setting when given.
    """

    #: Fraction of all pad sites allocated to power delivery.
    power_fraction: float = 0.25
    #: If set, force this many Vdd pads per core regardless of fraction
    #: (paper Sec. 5.1 uses 32 Vdd pads/core for the V-S TSV study).
    vdd_pads_per_core_override: int = 0

    def __post_init__(self) -> None:
        check_fraction("power_fraction", self.power_fraction)
        if self.vdd_pads_per_core_override < 0:
            raise ValueError("vdd_pads_per_core_override must be >= 0")

    def vdd_pads(self, total_sites: int, core_count: int) -> int:
        """Number of Vdd pads for a die with ``total_sites`` pad sites."""
        check_positive_int("total_sites", total_sites)
        check_positive_int("core_count", core_count)
        if self.vdd_pads_per_core_override:
            return self.vdd_pads_per_core_override * core_count
        return max(1, int(round(total_sites * self.power_fraction / 2.0)))


@dataclass(frozen=True)
class StackConfig:
    """A complete 3D stack design point for the PDN model."""

    #: Number of stacked silicon layers (paper studies 2-8).
    n_layers: int = 8
    #: Per-layer processor description.
    processor: ProcessorSpec = field(default_factory=ProcessorSpec)
    #: Power-TSV allocation between adjacent layers.
    tsv_topology: TSVTopology = field(default_factory=few_tsv)
    #: C4 pad split.
    pads: PadAllocation = field(default_factory=PadAllocation)
    #: Model-grid resolution: PDN nodes per die side, per net, per layer.
    #: 2 x n_layers x grid_nodes^2 electrical nodes total.
    grid_nodes: int = 24

    def __post_init__(self) -> None:
        check_positive_int("n_layers", self.n_layers)
        check_positive_int("grid_nodes", self.grid_nodes)
        if self.grid_nodes < 4:
            raise ValueError("grid_nodes must be at least 4 for a meaningful grid")

    @property
    def cell_size(self) -> float:
        """Side length of one model-grid cell (m)."""
        return self.processor.die_side / self.grid_nodes

    @property
    def total_peak_power(self) -> float:
        """Whole-stack peak power (W)."""
        return self.n_layers * self.processor.peak_power

    @property
    def stack_supply_voltage(self) -> float:
        """Off-chip supply for the voltage-stacked arrangement (V)."""
        return self.n_layers * self.processor.vdd


def default_processor() -> ProcessorSpec:
    """The paper's 16-core, 7.6 W, 44.12 mm^2 example layer."""
    return ProcessorSpec()
