"""Process / packaging technology parameters (paper Table 1).

All lengths are metres, resistances ohms, temperatures kelvin.  The
defaults reproduce Table 1 of the paper verbatim:

=============================================  =============
C4 pad pitch                                   200 um
C4 pad resistance                              10 mOhm
Minimum TSV pitch                              10 um
TSV diameter                                   5 um
Single TSV resistance                          44.539 mOhm
TSV keep-out-zone (KoZ) side length            9.88 um
On-chip PDN pitch / width / thickness          810 / 400 / 720 um
=============================================  =============

The on-chip PDN triple follows VoltSpot's convention: a global power grid
with one Vdd and one GND wire pair per ``pitch``, each wire ``width`` wide
in a metal layer ``thickness`` thick (the table's generous width/thickness
reflect that several real metal layers are lumped into one model layer).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.units import from_micro, from_milli
from repro.utils.validation import check_nonnegative, check_positive

#: Resistivity of copper interconnect at ~100C, ohm-metre.  Used to turn
#: the Table 1 wire geometry into a sheet resistance for the grid model.
COPPER_RESISTIVITY = 2.25e-8

#: Boltzmann constant in eV/K, used by Black's equation.
BOLTZMANN_EV = 8.617333262e-5


@dataclass(frozen=True)
class C4Technology:
    """Controlled-collapse chip connection (C4) pad technology."""

    #: Centre-to-centre pad pitch (m).  Table 1: 200 um.
    pitch: float = from_micro(200.0)
    #: Electrical resistance of a single pad (ohm).  Table 1: 10 mOhm.
    resistance: float = from_milli(10.0)
    #: Maximum DC current a pad tolerates before immediate (non-EM)
    #: failure; used only for sanity warnings, not Table 1.
    max_current: float = 1.0

    def __post_init__(self) -> None:
        check_positive("pitch", self.pitch)
        check_positive("resistance", self.resistance)
        check_positive("max_current", self.max_current)

    def pads_per_side(self, die_side: float) -> int:
        """Number of pad sites that fit along a die edge of ``die_side`` m."""
        check_positive("die_side", die_side)
        return max(1, int(die_side / self.pitch))


@dataclass(frozen=True)
class TSVTechnology:
    """Through-silicon-via technology (Table 1, values from Katti et al.)."""

    #: Via drum diameter (m).  Table 1: 5 um.
    diameter: float = from_micro(5.0)
    #: Minimum legal pitch between TSV centres (m).  Table 1: 10 um.
    min_pitch: float = from_micro(10.0)
    #: Resistance of one TSV (ohm).  Table 1: 44.539 mOhm.
    resistance: float = from_milli(44.539)
    #: Side length of the square keep-out zone around a TSV (m) within
    #: which no active device may be placed.  Table 1: 9.88 um.
    koz_side: float = from_micro(9.88)

    def __post_init__(self) -> None:
        check_positive("diameter", self.diameter)
        check_positive("min_pitch", self.min_pitch)
        check_positive("resistance", self.resistance)
        check_positive("koz_side", self.koz_side)
        if self.koz_side < self.diameter:
            raise ValueError("keep-out zone cannot be smaller than the TSV itself")

    @property
    def koz_area(self) -> float:
        """Silicon area blocked by one TSV's keep-out zone (m^2)."""
        return self.koz_side**2


@dataclass(frozen=True)
class OnChipMetal:
    """Lumped on-chip power-grid metal geometry (Table 1 triple)."""

    #: Wire-pair pitch of the global power grid (m).  Table 1: 810 um.
    pitch: float = from_micro(810.0)
    #: Width of each power wire (m).  Table 1: 400 um (lumped layers).
    width: float = from_micro(400.0)
    #: Thickness of the lumped power metal (m).  Table 1: 720 um-equivalent.
    thickness: float = from_micro(720.0)
    #: Metal resistivity (ohm-m); copper near operating temperature.
    resistivity: float = COPPER_RESISTIVITY

    def __post_init__(self) -> None:
        check_positive("pitch", self.pitch)
        check_positive("width", self.width)
        check_positive("thickness", self.thickness)
        check_positive("resistivity", self.resistivity)

    @property
    def sheet_resistance(self) -> float:
        """Effective sheet resistance of one power net (ohm/square).

        Wires run in both directions with one wire per ``pitch``; lumping
        them into a continuous sheet gives
        ``rho / thickness * (pitch / width)`` ohm per square.
        """
        return self.resistivity / self.thickness * (self.pitch / self.width)

    def grid_edge_resistance(self, cell_size: float) -> float:
        """Resistance of one model-grid edge of length ``cell_size``.

        The model grid discretises the continuous sheet; a square cell
        contributes exactly one square of sheet resistance per edge.
        """
        check_positive("cell_size", cell_size)
        return self.sheet_resistance  # square cells: L/W == 1


@dataclass(frozen=True)
class PackageModel:
    """Lumped package / board model between the VRM and the C4 pads.

    The paper inherits VoltSpot's RLC package; all results in the paper
    are static IR drop, for which only the resistive component matters.
    Inductance and decap are kept for the transient extension.
    """

    #: Total package + board spreading resistance (ohm) from the off-chip
    #: supply to the pad-side bus, per polarity (Vdd and GND each).
    #: Calibrated together with ``ProcessorSpec.dynamic_fraction`` so the
    #: 8-layer Fig. 6 comparison lands on the paper's quoted deltas
    #: (V-S is ~0.75% Vdd above Reg/Dense at 65% imbalance).
    resistance: float = 0.28e-3
    #: Package loop inductance (H), transient extension only.
    inductance: float = 18e-12
    #: On-package decoupling capacitance (F), transient extension only.
    decap: float = 260e-6

    def __post_init__(self) -> None:
        check_nonnegative("resistance", self.resistance)
        check_nonnegative("inductance", self.inductance)
        check_nonnegative("decap", self.decap)


@dataclass(frozen=True)
class EMParameters:
    """Black's-equation and lognormal parameters for EM lifetime.

    ``mttf = prefactor * current_density**-exponent * exp(ea / (k T))``.

    The paper normalises every lifetime to the 2-layer V-S PDN, so the
    prefactor cancels; it is kept so absolute numbers are still available.
    Values follow common C4/TSV EM characterisation (Black 1969 and the
    VoltSpot ISCA'14 methodology the paper adopts).
    """

    #: Current-density exponent ``n`` in Black's equation.  n = 1 is the
    #: void-growth-limited value commonly used for solder bumps and Cu
    #: TSVs; it also reproduces the paper's quoted lifetime ratios (5x
    #: C4 gap, >3x TSV gap, 84% regular-PDN degradation), which a
    #: nucleation-limited n ~ 2 would wildly overshoot.
    exponent: float = 1.0
    #: Activation energy (eV).
    activation_energy: float = 0.9
    #: Junction temperature used for lifetime evaluation (K).
    temperature: float = 378.15
    #: Lognormal shape parameter (sigma) of each conductor's lifetime.
    sigma: float = 0.3
    #: Arbitrary prefactor ``A`` (units chosen so lifetime is in hours for
    #: current density in A/m^2); cancels under normalisation.
    prefactor: float = 1.0e30

    def __post_init__(self) -> None:
        check_positive("exponent", self.exponent)
        check_positive("activation_energy", self.activation_energy)
        check_positive("temperature", self.temperature)
        check_positive("sigma", self.sigma)
        check_positive("prefactor", self.prefactor)

    @property
    def thermal_factor(self) -> float:
        """The ``exp(Ea / kT)`` factor of Black's equation."""
        import math

        return math.exp(self.activation_energy / (BOLTZMANN_EV * self.temperature))


def default_c4() -> C4Technology:
    """Table 1 C4 pad technology."""
    return C4Technology()


def default_tsv() -> TSVTechnology:
    """Table 1 TSV technology."""
    return TSVTechnology()


def default_metal() -> OnChipMetal:
    """Table 1 on-chip PDN metal stack."""
    return OnChipMetal()


def default_package() -> PackageModel:
    """VoltSpot-style lumped package."""
    return PackageModel()


def default_em() -> EMParameters:
    """Default electromigration parameters."""
    return EMParameters()
