"""Technology, geometry and scenario parameters.

The values in this package come directly from the paper:

* Table 1 — C4, TSV, and on-chip PDN metal parameters
  (:mod:`repro.config.technology`).
* Table 2 — the Dense / Sparse / Few TSV topologies
  (:mod:`repro.config.stackups`).
* Section 3.1 — the switched-capacitor converter implementation anchors
  (:mod:`repro.config.converters`).
* Section 4.1 — the 16-core ARM-class processor layer
  (:mod:`repro.config.stackups`).
"""

from repro.config.technology import (
    C4Technology,
    EMParameters,
    OnChipMetal,
    PackageModel,
    TSVTechnology,
    default_c4,
    default_em,
    default_metal,
    default_package,
    default_tsv,
)
from repro.config.stackups import (
    PadAllocation,
    ProcessorSpec,
    StackConfig,
    TSVTopology,
    TSV_TOPOLOGIES,
    default_processor,
    dense_tsv,
    few_tsv,
    sparse_tsv,
)
from repro.config.converters import (
    CAPACITOR_TECHNOLOGIES,
    CapacitorTechnology,
    SCConverterSpec,
    default_sc_spec,
)

__all__ = [
    "C4Technology",
    "EMParameters",
    "OnChipMetal",
    "PackageModel",
    "TSVTechnology",
    "default_c4",
    "default_em",
    "default_metal",
    "default_package",
    "default_tsv",
    "PadAllocation",
    "ProcessorSpec",
    "StackConfig",
    "TSVTopology",
    "TSV_TOPOLOGIES",
    "default_processor",
    "dense_tsv",
    "few_tsv",
    "sparse_tsv",
    "CAPACITOR_TECHNOLOGIES",
    "CapacitorTechnology",
    "SCConverterSpec",
    "default_sc_spec",
]
