"""Switched-capacitor converter implementation anchors (paper Sec. 3.1).

The paper implements a 2:1 push-pull SC converter in a commercial 28 nm
CMOS process: 8 nF of integrated fly capacitance, 50 MHz optimum switching
frequency, 4-way interleaving, 100 mA maximum load, and a fitted series
resistance of 0.6 ohm.  Implemented with MIM capacitors the converter is
0.472 mm^2; with ferroelectric or deep-trench capacitors it shrinks to
0.102 mm^2 or 0.082 mm^2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.utils.validation import check_fraction, check_positive, check_positive_int


@dataclass(frozen=True)
class CapacitorTechnology:
    """An integrated capacitor option for the SC converter fly caps."""

    #: Technology name.
    name: str
    #: Capacitance density (F/m^2).
    density: float
    #: Converter area when built with this capacitor (m^2); paper Sec 3.1.
    converter_area: float

    def __post_init__(self) -> None:
        check_positive("density", self.density)
        check_positive("converter_area", self.converter_area)


#: The three capacitor options the paper prices out.  Densities are chosen
#: so that 8 nF of fly capacitance dominates the quoted converter areas.
CAPACITOR_TECHNOLOGIES: Dict[str, CapacitorTechnology] = {
    "MIM": CapacitorTechnology(name="MIM", density=2e-5 / 1e-12, converter_area=0.472e-6),
    "ferroelectric": CapacitorTechnology(
        name="ferroelectric", density=1e-4 / 1e-12, converter_area=0.102e-6
    ),
    "trench": CapacitorTechnology(
        name="trench", density=1.25e-4 / 1e-12, converter_area=0.082e-6
    ),
}


@dataclass(frozen=True)
class SCConverterSpec:
    """Physical parameters of one 2:1 push-pull SC converter instance."""

    #: Total fly capacitance (F).  Paper: 8 nF.
    fly_capacitance: float = 8e-9
    #: Nominal (optimum) switching frequency (Hz).  Paper: 50 MHz.
    switching_frequency: float = 50e6
    #: Interleaving ways (phases).  Paper: 4.
    interleaving: int = 4
    #: Maximum load current (A).  Paper: 100 mA.
    max_load_current: float = 0.1
    #: Total switch on-conductance (S) at nominal drive.  Chosen together
    #: with the fly capacitance so the fitted series resistance matches
    #: the paper's 0.6 ohm (see repro.regulator.compact).
    switch_conductance: float = 3.905
    #: Switching duty cycle (paper assumes 50%).
    duty_cycle: float = 0.5
    #: Equivalent parasitic-loss resistance across the input port (ohm)
    #: at the nominal switching frequency; captures bottom-plate,
    #: switch-parasitic and gate-drive loss (RPAR in Fig. 2).
    parasitic_resistance: float = 420.0
    #: Capacitor technology used for area accounting.
    capacitor_technology: str = "MIM"

    def __post_init__(self) -> None:
        check_positive("fly_capacitance", self.fly_capacitance)
        check_positive("switching_frequency", self.switching_frequency)
        check_positive_int("interleaving", self.interleaving)
        check_positive("max_load_current", self.max_load_current)
        check_positive("switch_conductance", self.switch_conductance)
        check_fraction("duty_cycle", self.duty_cycle)
        if self.duty_cycle == 0.0:
            raise ValueError("duty_cycle must be > 0")
        check_positive("parasitic_resistance", self.parasitic_resistance)
        if self.capacitor_technology not in CAPACITOR_TECHNOLOGIES:
            raise ValueError(
                f"unknown capacitor technology {self.capacitor_technology!r}; "
                f"choose from {sorted(CAPACITOR_TECHNOLOGIES)}"
            )

    @property
    def area(self) -> float:
        """Silicon area of one converter (m^2) for the chosen capacitors."""
        return CAPACITOR_TECHNOLOGIES[self.capacitor_technology].converter_area


def default_sc_spec() -> SCConverterSpec:
    """The paper's 28 nm converter design point."""
    return SCConverterSpec()
