"""Shared building blocks for the two 3D PDN topologies.

Both PDN classes derive from :class:`BasePDN3D`, which owns the model
grid, the per-layer load current machinery (leakage + activity * dynamic
decomposition for fast sweeps), and the assembled-circuit lifecycle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config.stackups import StackConfig
from repro.config.technology import (
    C4Technology,
    OnChipMetal,
    PackageModel,
    TSVTechnology,
    default_c4,
    default_metal,
    default_package,
    default_tsv,
)
from repro.contracts import check_pdn_result
from repro.errors import ReproError
from repro.grid.backends import resolve_backend
from repro.grid.netlist import Circuit, ElementRef
from repro.grid.solver import SolveOptions, SolveRequest
from repro.pdn.geometry import CellMultiplicity, GridGeometry, cells_to_arrays
from repro.pdn.results import ConductorGroup, PDNResult
from repro.power.powermap import PowerMap, layer_power_map

#: Ground reference node key shared by all PDN builds.
BOARD_GND = ("board", "gnd")
BOARD_VDD = ("board", "vdd")
PKG_VDD = ("pkg", "vdd")
PKG_GND = ("pkg", "gnd")
#: Inductor-side package nodes, present only when the PDN is built with
#: ``package_inductor_nodes=True`` (transient analysis).
PKG_VDD_IND = ("pkg", "vdd.ind")
PKG_GND_IND = ("pkg", "gnd.ind")


def add_net_grid(
    circuit: Circuit,
    layer: int,
    net: str,
    geometry: GridGeometry,
    edge_resistance: float,
) -> np.ndarray:
    """Create one layer's power-net mesh; returns a (g, g) node-id array.

    The mesh has one node per cell and one square of sheet resistance per
    horizontal/vertical edge.
    """
    g = geometry.grid_nodes
    ids = circuit.nodes(((net, layer, j, i) for j in range(g) for i in range(g)))
    ids = ids.reshape(g, g)
    tag = f"grid.{net}.l{layer}"
    # Horizontal edges.
    n1 = ids[:, :-1].ravel()
    n2 = ids[:, 1:].ravel()
    circuit.add_resistors(n1, n2, np.full(n1.size, edge_resistance), tag=tag)
    # Vertical edges.
    n1 = ids[:-1, :].ravel()
    n2 = ids[1:, :].ravel()
    circuit.add_resistors(n1, n2, np.full(n1.size, edge_resistance), tag=tag)
    return ids


def connect_bundles(
    circuit: Circuit,
    from_ids: np.ndarray,
    to_ids: np.ndarray,
    cells: CellMultiplicity,
    unit_resistance: float,
    tag: str,
    segments: int = 1,
) -> ConductorGroup:
    """Connect two node-id grids through per-cell conductor bundles.

    ``from_ids``/``to_ids`` are (g, g) arrays; each cell in ``cells``
    gets one equivalent resistor of ``unit_resistance * segments /
    multiplicity``.  Returns the EM bookkeeping for the group.
    """
    j, i, m = cells_to_arrays(cells)
    n1 = from_ids[j, i]
    n2 = to_ids[j, i]
    resistance = unit_resistance * segments / m
    ref = circuit.add_resistors(n1, n2, resistance, tag=tag)
    return ConductorGroup(tag=tag, ref=ref, multiplicity=m, segments=segments)


def connect_bundles_to_node(
    circuit: Circuit,
    node_key,
    grid_ids: np.ndarray,
    cells: CellMultiplicity,
    unit_resistance: float,
    tag: str,
    segments: int = 1,
) -> ConductorGroup:
    """Like :func:`connect_bundles` but one side is a single lumped node."""
    j, i, m = cells_to_arrays(cells)
    node_id = circuit.node(node_key)
    n1 = np.full(len(m), node_id, dtype=int)
    n2 = grid_ids[j, i]
    resistance = unit_resistance * segments / m
    ref = circuit.add_resistors(n1, n2, resistance, tag=tag)
    return ConductorGroup(tag=tag, ref=ref, multiplicity=m, segments=segments)


class BasePDN3D:
    """Common machinery for the regular and voltage-stacked PDNs."""

    def __init__(
        self,
        stack: StackConfig,
        c4: Optional[C4Technology] = None,
        tsv: Optional[TSVTechnology] = None,
        metal: Optional[OnChipMetal] = None,
        package: Optional[PackageModel] = None,
        package_inductor_nodes: bool = False,
    ):
        self.stack = stack
        #: When True the package branch is left open between the
        #: resistor-side and pad-side nodes; the transient analysis
        #: closes it with the package inductors.  A plain DC solve of
        #: such a PDN would be singular — this flag is for
        #: :class:`repro.pdn.transient.TransientPDNAnalysis` only.
        self.package_inductor_nodes = package_inductor_nodes
        self.c4 = c4 or default_c4()
        self.tsv = tsv or default_tsv()
        self.metal = metal or default_metal()
        self.package = package or default_package()
        self.geometry = GridGeometry.from_stack(stack)
        self.circuit = Circuit()
        self.circuit.set_ground(BOARD_GND)
        self.vdd_ids: List[np.ndarray] = []
        self.gnd_ids: List[np.ndarray] = []
        self.conductor_groups: Dict[str, ConductorGroup] = {}
        self._load_refs: List[ElementRef] = []
        # Leakage / dynamic decomposition of the per-cell load currents,
        # for fast uniform-activity sweeps.
        leak_map = layer_power_map(stack, activity=0.0)
        full_map = layer_power_map(stack, activity=1.0)
        vdd = stack.processor.vdd
        self._leak_cells = leak_map.currents(vdd).ravel()
        self._dyn_cells = (full_map.cell_power - leak_map.cell_power).ravel() / vdd
        self._assembled = None
        self._fault_reports: List = []

    # ------------------------------------------------------------------
    def _add_layer_grids(self, edge_resistance: float) -> None:
        for layer in range(self.stack.n_layers):
            self.vdd_ids.append(
                add_net_grid(self.circuit, layer, "vdd", self.geometry, edge_resistance)
            )
            self.gnd_ids.append(
                add_net_grid(self.circuit, layer, "gnd", self.geometry, edge_resistance)
            )

    def _add_supply(self, voltage: float) -> None:
        """Stamp the off-chip source and lumped package (both polarities)."""
        circuit = self.circuit
        circuit.add_voltage_source(BOARD_VDD, BOARD_GND, voltage, tag="supply")
        pkg_r = max(self.package.resistance, 1e-9)
        if self.package_inductor_nodes:
            circuit.add_resistor(BOARD_VDD, PKG_VDD_IND, pkg_r, tag="pkg.vdd")
            circuit.add_resistor(PKG_GND_IND, BOARD_GND, pkg_r, tag="pkg.gnd")
        else:
            circuit.add_resistor(BOARD_VDD, PKG_VDD, pkg_r, tag="pkg.vdd")
            circuit.add_resistor(PKG_GND, BOARD_GND, pkg_r, tag="pkg.gnd")

    def _add_layer_loads(self) -> None:
        """Constant-current loads at every cell of every layer.

        Placeholder (peak) currents are stamped; :meth:`solve` overrides
        them per operating point through the RHS only.
        """
        peak = self._leak_cells + self._dyn_cells
        for layer in range(self.stack.n_layers):
            ref = self.circuit.add_current_sources(
                self.vdd_ids[layer].ravel(),
                self.gnd_ids[layer].ravel(),
                peak,
                tag=f"load.l{layer}",
            )
            self._load_refs.append(ref)

    def _record_group(self, group: ConductorGroup) -> None:
        if group.tag in self.conductor_groups:
            raise ValueError(f"duplicate conductor group {group.tag!r}")
        self.conductor_groups[group.tag] = group

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def apply_faults(self, plan) -> "FaultReport":
        """Apply a :class:`repro.faults.FaultPlan` to this PDN's circuit.

        The cached factorisation is invalidated, conductor-group
        multiplicities are updated to the surviving population, and
        subsequent :meth:`solve` calls default to the resilient path
        (islands pruned and diagnosed instead of crashing).
        """
        report = plan.apply(self)
        self._fault_reports.append(report)
        self._assembled = None
        return report

    @property
    def faulted(self) -> bool:
        """True once any fault plan has been applied."""
        return bool(self._fault_reports)

    @property
    def fault_reports(self) -> List:
        """Reports of every fault plan applied so far, in order."""
        return list(self._fault_reports)

    def fault_tags(self, prefix: str = "") -> List[str]:
        """Conductor-group keys addressable by fault plans."""
        return [k for k in self.conductor_groups if k.startswith(prefix)]

    # ------------------------------------------------------------------
    def _load_current_vector(
        self,
        layer_activities: Optional[Sequence[float]],
        power_maps: Optional[Sequence[PowerMap]],
    ) -> np.ndarray:
        n_layers = self.stack.n_layers
        cells = self.geometry.grid_nodes**2
        currents = np.empty(n_layers * cells)
        vdd = self.stack.processor.vdd
        if power_maps is not None:
            if len(power_maps) != n_layers:
                raise ValueError(f"need {n_layers} power maps, got {len(power_maps)}")
            for l, pmap in enumerate(power_maps):
                if pmap.grid_nodes != self.geometry.grid_nodes:
                    raise ValueError("power map grid does not match the PDN grid")
                if not np.all(np.isfinite(pmap.cell_power)):
                    raise ReproError(
                        f"power map for layer {l} contains NaN/Inf cell powers"
                    )
                currents[l * cells : (l + 1) * cells] = pmap.currents(vdd).ravel()
            return currents
        if layer_activities is None:
            layer_activities = np.ones(n_layers)
        layer_activities = np.asarray(layer_activities, dtype=float)
        if layer_activities.shape != (n_layers,):
            raise ValueError(
                f"layer_activities must have shape ({n_layers},), got "
                f"{layer_activities.shape}"
            )
        bad = np.flatnonzero(~np.isfinite(layer_activities))
        if bad.size:
            raise ReproError(
                f"layer_activities[{int(bad[0])}] is NaN/Inf (layer {int(bad[0])})"
            )
        if np.any((layer_activities < 0) | (layer_activities > 1)):
            raise ValueError("layer activities must lie in [0, 1]")
        for l, activity in enumerate(layer_activities):
            currents[l * cells : (l + 1) * cells] = (
                self._leak_cells + activity * self._dyn_cells
            )
        return currents

    def solve(
        self,
        layer_activities: Optional[Sequence[float]] = None,
        power_maps: Optional[Sequence[PowerMap]] = None,
        resilient: Optional[bool] = None,
    ) -> PDNResult:
        """Solve one operating point.

        Either give per-layer uniform ``layer_activities`` (fast sweep
        path — the factorisation is reused) or explicit per-layer
        ``power_maps`` (spatially detailed).  Default: all layers fully
        active, the regular PDN's worst case.

        ``resilient`` selects the island-pruning solve path with
        :class:`repro.grid.solver.SolveDiagnostics` attached to the
        result; by default it turns on automatically once faults have
        been applied through :meth:`apply_faults`.
        """
        if resilient is None:
            resilient = self.faulted
        currents = self._load_current_vector(layer_activities, power_maps)
        solution = self.assembled().solve(
            SolveRequest(
                isource_current=currents,
                options=SolveOptions(resilient=resilient),
            )
        )
        return self._finalise_result(self._make_result(solution))

    def solve_batch(
        self,
        activity_sets: Sequence[Optional[Sequence[float]]],
        resilient: Optional[bool] = None,
    ) -> List[PDNResult]:
        """Solve many operating points in one multi-RHS batched solve.

        ``activity_sets`` is a sequence of per-layer activity vectors
        (``None`` entries mean all layers fully active, as in
        :meth:`solve`).  The PDN is assembled and factorised once; all
        load vectors are stacked into a dense RHS matrix and solved by a
        single :meth:`repro.grid.solver.AssembledCircuit.solve_batch`
        call.  Results match point-by-point :meth:`solve` calls exactly
        and are returned in input order.
        """
        if resilient is None:
            resilient = self.faulted
        currents = [
            self._load_current_vector(activities, None)
            for activities in activity_sets
        ]
        solutions = self.assembled().solve(
            SolveRequest(
                isource_currents=currents,
                options=SolveOptions(resilient=resilient),
            )
        )
        return [
            self._finalise_result(self._make_result(solution))
            for solution in solutions
        ]

    def assembled(self, backend=None):
        """The cached :class:`AssembledCircuit`, assembling on demand.

        ``backend`` (a solver-backend name from
        :mod:`repro.grid.backends`, or ``None`` for the process
        default) selects the factorisation backend; asking for a
        different backend than the cached assembly re-assembles.
        """
        if self._assembled is None or (
            backend is not None
            and self._assembled.backend.name != resolve_backend(backend).name
        ):
            self._assembled = self.circuit.assemble(backend=backend)
        return self._assembled

    # Subclasses fill converter metadata.
    def _make_result(self, solution) -> PDNResult:
        return PDNResult(
            solution=solution,
            vdd_nominal=self.stack.processor.vdd,
            vdd_node_ids=self.vdd_ids,
            gnd_node_ids=self.gnd_ids,
            conductor_groups=self.conductor_groups,
        )

    def _finalise_result(self, result: PDNResult) -> PDNResult:
        """Run the physics-contract checks and attach the report.

        Checks are pure reads — they never modify the solved values —
        so enabling them cannot change any experiment output.  A check
        failing at severity ``raise`` aborts here with a typed
        :class:`repro.errors.ContractViolationError`.  Solves of a
        fault-injected network are checked as degraded (severity capped
        at ``record``): its pristine invariants no longer hold by
        construction, and violations are data, not errors.
        """
        report = check_pdn_result(result, degraded=self.faulted)
        result.contracts = report
        diagnostics = result.diagnostics
        if diagnostics is not None:
            diagnostics.contracts = report
        return result
