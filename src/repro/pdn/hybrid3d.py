"""Hybrid (multi-story) power delivery: partial voltage stacking.

The paper compares the two extremes — fully parallel (regular) and a
single series ladder the full height of the stack.  Its reference [6]
(Jain et al., "a multi-story power delivery technique", ISLPED 2008)
suggests the middle ground this module models: the ``N`` layers are
divided into ``N / h`` *stories* of height ``h``; layers within a story
are voltage-stacked (sharing current, off-chip supply ``h * Vdd``)
while the stories themselves are paralleled at the C4 interface.

``h = 1`` degenerates to the regular PDN; ``h = N`` is the paper's full
V-S arrangement.  Intermediate heights trade:

* off-chip/pad current density (improves with ``h`` — the EM win),
* boosted supply voltage and through-via depth (grow with ``h``),
* regulation burden: each story needs ``h - 1`` regulated rails.

Electrically, story ``s`` (layers ``s*h .. s*h + h - 1``) is an
independent ladder whose top rail is fed by the Vdd pad through-vias
and whose bottom rail returns to the GND pads through via stacks
crossing the ``s*h`` layers below it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config.converters import SCConverterSpec, default_sc_spec
from repro.config.stackups import StackConfig
from repro.config.technology import (
    C4Technology,
    OnChipMetal,
    PackageModel,
    TSVTechnology,
)
from repro.pdn.builder import (
    PKG_GND,
    PKG_VDD,
    BasePDN3D,
    connect_bundles,
)
from repro.pdn.geometry import cells_to_arrays, distribute_per_core
from repro.pdn.pads import build_pad_array
from repro.pdn.results import ConductorGroup, PDNResult
from repro.pdn.tsv import build_tsv_arrays
from repro.regulator.compact import SCCompactModel
from repro.utils.validation import check_positive_int


class HybridPDN3D(BasePDN3D):
    """Multi-story power delivery with story height ``story_height``."""

    def __init__(
        self,
        stack: StackConfig,
        story_height: int,
        converters_per_core: int = 8,
        converter_spec: Optional[SCConverterSpec] = None,
        c4: Optional[C4Technology] = None,
        tsv: Optional[TSVTechnology] = None,
        metal: Optional[OnChipMetal] = None,
        package: Optional[PackageModel] = None,
    ):
        check_positive_int("story_height", story_height)
        if stack.n_layers % story_height != 0:
            raise ValueError(
                f"story_height {story_height} must divide n_layers {stack.n_layers}"
            )
        super().__init__(stack, c4=c4, tsv=tsv, metal=metal, package=package)
        self.story_height = story_height
        self.n_stories = stack.n_layers // story_height
        self.converters_per_core = converters_per_core
        self.converter_spec = converter_spec or default_sc_spec()
        self.compact_model = SCCompactModel(self.converter_spec)
        self.pad_array = build_pad_array(stack, self.c4, self.geometry)
        self.tsv_arrays = build_tsv_arrays(stack, self.tsv, self.geometry)
        self._converter_multiplicity: Optional[np.ndarray] = None
        self._build()

    # ------------------------------------------------------------------
    @property
    def supply_voltage(self) -> float:
        """Off-chip supply: one story's worth of stacked Vdd."""
        return self.story_height * self.stack.processor.vdd

    def _build(self) -> None:
        circuit = self.circuit
        stack = self.stack
        h = self.story_height
        edge_r = self.metal.grid_edge_resistance(self.geometry.cell_size)
        self._add_layer_grids(edge_r)
        self._add_supply(self.supply_voltage)

        # The pad arrays are PARTITIONED among the stories (stories sit
        # between different rails, so a pad serves exactly one story):
        # pad cells are dealt round-robin, preserving both the total
        # pad count and the spatial spread of each story's share.
        conv_cells = distribute_per_core(self.geometry, self.converters_per_core)
        cj, ci, cm = cells_to_arrays(conv_cells)
        pj, pi, pm_vdd = cells_to_arrays(self.pad_array.vdd_cells)
        gj, gi, pm_gnd = cells_to_arrays(self.pad_array.gnd_cells)
        if len(pm_vdd) < self.n_stories or len(pm_gnd) < self.n_stories:
            raise ValueError(
                "not enough pad cells to partition among the stories; use a "
                "finer grid or fewer stories"
            )
        pkg_vdd_id = circuit.node(PKG_VDD)
        pkg_gnd_id = circuit.node(PKG_GND)
        multiplicities = []

        for story in range(self.n_stories):
            bottom_layer = story * h
            top_layer = bottom_layer + h - 1
            sel_v = np.arange(len(pm_vdd)) % self.n_stories == story
            sel_g = np.arange(len(pm_gnd)) % self.n_stories == story

            # Story's Vdd pads -> its top rail, through ``top_layer``
            # crossed interfaces (the through-via stack's segments).
            r_up = (
                self.pad_array.pad_resistance
                + top_layer * self.tsv_arrays.tsv_resistance
            )
            n1 = np.full(int(sel_v.sum()), pkg_vdd_id, dtype=int)
            n2 = self.vdd_ids[top_layer][pj[sel_v], pi[sel_v]]
            ref = circuit.add_resistors(
                n1, n2, r_up / pm_vdd[sel_v], tag=f"c4.vdd.s{story}"
            )
            self._record_group(
                ConductorGroup(
                    tag=f"c4.vdd.s{story}",
                    ref=ref,
                    multiplicity=pm_vdd[sel_v],
                    segments=1,
                )
            )
            if top_layer > 0:
                self.conductor_groups[f"tvia.vdd.s{story}"] = ConductorGroup(
                    tag=f"c4.vdd.s{story}",
                    ref=ref,
                    multiplicity=pm_vdd[sel_v],
                    segments=top_layer,
                )

            # Story's bottom rail -> its GND pads, through the layers
            # below the story.
            r_down = (
                self.pad_array.pad_resistance
                + bottom_layer * self.tsv_arrays.tsv_resistance
            )
            n1 = self.gnd_ids[bottom_layer][gj[sel_g], gi[sel_g]]
            n2 = np.full(int(sel_g.sum()), pkg_gnd_id, dtype=int)
            ref = circuit.add_resistors(
                n1, n2, r_down / pm_gnd[sel_g], tag=f"c4.gnd.s{story}"
            )
            self._record_group(
                ConductorGroup(
                    tag=f"c4.gnd.s{story}",
                    ref=ref,
                    multiplicity=pm_gnd[sel_g],
                    segments=1,
                )
            )
            if bottom_layer > 0:
                self.conductor_groups[f"tvia.gnd.s{story}"] = ConductorGroup(
                    tag=f"c4.gnd.s{story}",
                    ref=ref,
                    multiplicity=pm_gnd[sel_g],
                    segments=bottom_layer,
                )

            # Intra-story rail tiers + converter banks (as in the V-S PDN).
            r_series = self.compact_model.r_series()
            r_par = self.compact_model.r_par()
            for offset in range(1, h):
                layer = bottom_layer + offset
                self._record_group(
                    connect_bundles(
                        circuit,
                        self.vdd_ids[layer - 1],
                        self.gnd_ids[layer],
                        self.tsv_arrays.rail_cells,
                        self.tsv_arrays.tsv_resistance,
                        tag=f"tsv.rail.s{story}.r{offset}",
                    )
                )
                top_ids = self.vdd_ids[layer][cj, ci]
                bottom_ids = self.gnd_ids[layer - 1][cj, ci]
                mid_ids = self.vdd_ids[layer - 1][cj, ci]
                circuit.add_converters(
                    top_ids, bottom_ids, mid_ids, r_series / cm,
                    tag=f"sc.s{story}.r{offset}",
                )
                circuit.add_resistors(
                    top_ids, bottom_ids, r_par / cm, tag=f"scpar.s{story}.r{offset}"
                )
                multiplicities.append(cm)

        if multiplicities:
            self._converter_multiplicity = np.concatenate(multiplicities)
        self._add_layer_loads()

    # ------------------------------------------------------------------
    def _make_result(self, solution) -> PDNResult:
        return PDNResult(
            solution=solution,
            vdd_nominal=self.stack.processor.vdd,
            vdd_node_ids=self.vdd_ids,
            gnd_node_ids=self.gnd_ids,
            conductor_groups=self.conductor_groups,
            converter_multiplicity=self._converter_multiplicity,
            converter_rating=(
                self.converter_spec.max_load_current
                if self._converter_multiplicity is not None
                else None
            ),
        )
