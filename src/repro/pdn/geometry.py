"""Die / grid geometry helpers shared by the PDN builders.

The electrical model discretises each power net into ``g x g`` nodes over
the (square) die.  Physical objects — C4 pads, TSVs, SC converters — are
placed at physical coordinates and then binned to their nearest grid
cell; several objects landing in one cell become a *bundle*: one
equivalent resistor of ``R / multiplicity`` whose per-conductor current
is recovered by dividing the bundle current by the multiplicity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.config.stackups import StackConfig
from repro.utils.validation import check_positive, check_positive_int

Cell = Tuple[int, int]
CellMultiplicity = Dict[Cell, int]


@dataclass(frozen=True)
class GridGeometry:
    """Grid discretisation of one die."""

    #: Nodes per die side.
    grid_nodes: int
    #: Die side length (m).
    die_side: float
    #: Core array dimensions (rows == cols for the example processor).
    core_rows: int
    core_cols: int

    def __post_init__(self) -> None:
        check_positive_int("grid_nodes", self.grid_nodes)
        check_positive("die_side", self.die_side)
        check_positive_int("core_rows", self.core_rows)
        check_positive_int("core_cols", self.core_cols)

    @classmethod
    def from_stack(cls, stack: StackConfig) -> "GridGeometry":
        rows = cols = int(round(math.sqrt(stack.processor.core_count)))
        if rows * cols != stack.processor.core_count:
            raise ValueError("core_count must be a perfect square")
        return cls(
            grid_nodes=stack.grid_nodes,
            die_side=stack.processor.die_side,
            core_rows=rows,
            core_cols=cols,
        )

    @property
    def cell_size(self) -> float:
        return self.die_side / self.grid_nodes

    @property
    def core_count(self) -> int:
        return self.core_rows * self.core_cols

    def cell_of_point(self, x: float, y: float) -> Cell:
        """Grid cell (row j, col i) containing physical point (x, y)."""
        g = self.grid_nodes
        i = min(g - 1, max(0, int(x / self.cell_size)))
        j = min(g - 1, max(0, int(y / self.cell_size)))
        return (j, i)

    def core_tile_origin(self, core_row: int, core_col: int) -> Tuple[float, float]:
        """Physical lower-left corner of a core tile."""
        tile_w = self.die_side / self.core_cols
        tile_h = self.die_side / self.core_rows
        return core_col * tile_w, core_row * tile_h

    def core_of_cell(self, cell: Cell) -> Tuple[int, int]:
        """(core_row, core_col) that a grid cell belongs to."""
        j, i = cell
        x = (i + 0.5) * self.cell_size
        y = (j + 0.5) * self.cell_size
        col = min(self.core_cols - 1, int(x / (self.die_side / self.core_cols)))
        row = min(self.core_rows - 1, int(y / (self.die_side / self.core_rows)))
        return row, col


def _lattice_points(count: int, width: float, height: float) -> List[Tuple[float, float]]:
    """``count`` points spread evenly over a width x height rectangle.

    Uses the smallest near-square lattice with at least ``count`` sites
    and keeps the first ``count`` in row-major order; points sit at cell
    centres of that lattice, so they never touch the rectangle boundary.
    """
    check_positive_int("count", count)
    cols = int(math.ceil(math.sqrt(count * width / height)))
    cols = max(cols, 1)
    rows = int(math.ceil(count / cols))
    points: List[Tuple[float, float]] = []
    for r in range(rows):
        for c in range(cols):
            if len(points) >= count:
                return points
            points.append(
                ((c + 0.5) * width / cols, (r + 0.5) * height / rows)
            )
    return points


def distribute_uniform(geometry: GridGeometry, count: int) -> CellMultiplicity:
    """Spread ``count`` objects uniformly over the whole die.

    Returns per-cell multiplicities summing exactly to ``count``.
    """
    cells: CellMultiplicity = {}
    for x, y in _lattice_points(count, geometry.die_side, geometry.die_side):
        cell = geometry.cell_of_point(x, y)
        cells[cell] = cells.get(cell, 0) + 1
    return cells


def distribute_per_core(geometry: GridGeometry, count_per_core: int) -> CellMultiplicity:
    """Spread ``count_per_core`` objects uniformly within every core tile.

    Matches the paper's assumption that TSVs (Sec. 4.2) and SC converters
    (Sec. 3.2) are uniformly distributed within each core.
    """
    check_positive_int("count_per_core", count_per_core)
    tile_w = geometry.die_side / geometry.core_cols
    tile_h = geometry.die_side / geometry.core_rows
    cells: CellMultiplicity = {}
    for core_row in range(geometry.core_rows):
        for core_col in range(geometry.core_cols):
            ox, oy = geometry.core_tile_origin(core_row, core_col)
            for x, y in _lattice_points(count_per_core, tile_w, tile_h):
                cell = geometry.cell_of_point(ox + x, oy + y)
                cells[cell] = cells.get(cell, 0) + 1
    return cells


def cells_to_arrays(cells: CellMultiplicity):
    """Split a cell->multiplicity map into aligned (j, i, m) arrays."""
    if not cells:
        raise ValueError("cells must be non-empty")
    items = sorted(cells.items())
    j = np.array([c[0] for c, _ in items], dtype=int)
    i = np.array([c[1] for c, _ in items], dtype=int)
    m = np.array([mult for _, mult in items], dtype=int)
    return j, i, m
