"""3D-IC power-delivery-network models (the VoltSpot 3D extension).

Two PDN arrangements are modelled on the same electrical substrate
(paper Fig. 4):

* :class:`RegularPDN3D` — the conventional arrangement: every layer's
  Vdd and GND nets are paralleled through TSV tiers down to the C4
  pads (Fig. 4a).
* :class:`StackedPDN3D` — charge-recycled voltage stacking: the layers'
  supply/ground nets form a series ladder of ``N+1`` rails; the boosted
  supply enters the top layer through through-via stacks, and push-pull
  SC converters regulate every intermediate rail (Fig. 4b).

Both produce a :class:`PDNResult` exposing the max on-chip IR drop, the
per-conductor C4/TSV current profile consumed by the EM analysis, and
system power-efficiency bookkeeping.
"""

from repro.pdn.closedloop import (
    ClosedLoopResult,
    ClosedLoopSystemSolver,
    closed_loop_efficiency_gain,
)
from repro.pdn.geometry import GridGeometry, distribute_per_core, distribute_uniform
from repro.pdn.hybrid3d import HybridPDN3D
from repro.pdn.pads import PadArray, build_pad_array
from repro.pdn.tsv import TSVArrays, build_tsv_arrays, tsv_topology_report
from repro.pdn.results import ConductorGroup, PDNResult
from repro.pdn.regular3d import RegularPDN3D
from repro.pdn.regular_sc3d import RegularSCPDN3D
from repro.pdn.stacked3d import StackedPDN3D
from repro.pdn.transient import TransientPDNAnalysis

__all__ = [
    "GridGeometry",
    "distribute_per_core",
    "distribute_uniform",
    "PadArray",
    "build_pad_array",
    "TSVArrays",
    "build_tsv_arrays",
    "tsv_topology_report",
    "ConductorGroup",
    "PDNResult",
    "RegularPDN3D",
    "RegularSCPDN3D",
    "StackedPDN3D",
    "HybridPDN3D",
    "TransientPDNAnalysis",
    "ClosedLoopResult",
    "ClosedLoopSystemSolver",
    "closed_loop_efficiency_gain",
]
