"""Power-delivery TSV arrays (paper Sec. 4.2, Table 2).

For the regular PDN each inter-layer tier carries half its TSVs on the
Vdd net and half on the GND net.  For the voltage-stacked PDN a tier
connects the two physical nets of a single rail (layer ``l``'s Vdd metal
and layer ``l+1``'s GND metal), so all of the tier's TSVs serve that one
rail.  Each TSV additionally blocks a keep-out zone of silicon, which is
the area cost reported in Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config.stackups import StackConfig, TSVTopology
from repro.config.technology import TSVTechnology, default_tsv
from repro.pdn.geometry import CellMultiplicity, GridGeometry, distribute_per_core
from repro.utils.units import to_micro, to_percent


def tier_tag(net: str, tier: int) -> str:
    """Canonical conductor-group tag of a regular-PDN TSV tier net.

    Single source of truth for the tag names the builders stamp and the
    fault-injection subsystem addresses.
    """
    return f"tsv.{net}.t{tier}"


def rail_tag(rail: int) -> str:
    """Canonical conductor-group tag of a voltage-stacked rail tier."""
    return f"tsv.rail{rail}"


@dataclass(frozen=True)
class TSVArrays:
    """Resolved per-tier TSV placement on the model grid."""

    #: Vdd-net TSV cells (regular PDN), per-cell multiplicity.
    vdd_cells: CellMultiplicity
    #: GND-net TSV cells (regular PDN).
    gnd_cells: CellMultiplicity
    #: Whole-tier TSV cells (voltage-stacked rail tiers).
    rail_cells: CellMultiplicity
    #: TSV counts per core behind the placements.
    vdd_per_core: int
    gnd_per_core: int
    total_per_core: int
    #: Single-TSV resistance (ohm).
    tsv_resistance: float


def build_tsv_arrays(
    stack: StackConfig,
    tsv: TSVTechnology = None,
    geometry: GridGeometry = None,
) -> TSVArrays:
    """Place one tier's TSVs for ``stack`` on the model grid."""
    tsv = tsv or default_tsv()
    geometry = geometry or GridGeometry.from_stack(stack)
    topo = stack.tsv_topology
    return TSVArrays(
        vdd_cells=distribute_per_core(geometry, topo.vdd_tsvs_per_core),
        gnd_cells=distribute_per_core(geometry, topo.gnd_tsvs_per_core),
        rail_cells=distribute_per_core(geometry, topo.tsvs_per_core),
        vdd_per_core=topo.vdd_tsvs_per_core,
        gnd_per_core=topo.gnd_tsvs_per_core,
        total_per_core=topo.tsvs_per_core,
        tsv_resistance=tsv.resistance,
    )


def tsv_topology_report(
    topology: TSVTopology, core_area: float, tsv: TSVTechnology = None
) -> Dict[str, float]:
    """One Table 2 row: derived pitch and area overhead for a topology."""
    tsv = tsv or default_tsv()
    return {
        "name": topology.name,
        "tsvs_per_core": topology.tsvs_per_core,
        "effective_pitch_um": to_micro(topology.effective_pitch(core_area)),
        "area_overhead_percent": to_percent(topology.area_overhead(core_area, tsv)),
    }
