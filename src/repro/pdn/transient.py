"""Transient (di/dt) noise analysis of a 3D PDN — an extension.

The paper evaluates static IR drop; this module adds the natural next
question: what happens in the cycles right after a power step (all
cores idle -> all cores active)?  On-chip decoupling capacitance is
added at every grid cell of every layer, the PDN is settled at the idle
operating point, the load steps, and the worst instantaneous droop at a
monitored cell is recorded.

Usage::

    analysis = TransientPDNAnalysis(lambda: build_stacked_pdn(4, grid_nodes=10))
    trace = analysis.load_step(idle_activity=0.0, active_activity=1.0)
    print(analysis.first_droop(trace))
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.grid.dynamic import Capacitor, Inductor, TransientEngine, TransientTrace
from repro.pdn.builder import (
    PKG_GND,
    PKG_GND_IND,
    PKG_VDD,
    PKG_VDD_IND,
    BasePDN3D,
)
from repro.utils.validation import check_positive


class TransientPDNAnalysis:
    """Load-step droop analysis over a (freshly built) 3D PDN.

    Parameters
    ----------
    pdn_factory:
        Zero-argument callable returning a newly built PDN; the analysis
        augments the PDN's circuit with companion elements, so it must
        own a fresh instance (a previously solved PDN cannot be reused).
    decap_per_layer:
        Total explicit + intrinsic decoupling capacitance per layer (F),
        spread uniformly over the grid cells.  ~100 nF/layer is typical
        for a die this size.
    dt:
        Timestep (s); default 50 ps (~20 points per ns).
    """

    def __init__(
        self,
        pdn_factory: Callable[[], BasePDN3D],
        decap_per_layer: float = 100e-9,
        dt: float = 50e-12,
    ):
        check_positive("decap_per_layer", decap_per_layer)
        self.pdn = pdn_factory()
        if self.pdn._assembled is not None:  # noqa: SLF001 - documented contract
            raise ValueError("pdn_factory must return an unsolved PDN instance")
        g = self.pdn.geometry.grid_nodes
        per_cell = decap_per_layer / (g * g)
        capacitors = [
            Capacitor(
                n1=("vdd", layer, j, i),
                n2=("gnd", layer, j, i),
                capacitance=per_cell,
            )
            for layer in range(self.pdn.stack.n_layers)
            for j in range(g)
            for i in range(g)
        ]
        inductors = []
        if self.pdn.package_inductor_nodes:
            # Close the package branch that the builder left open, and
            # hang the on-package decap behind the inductors.
            pkg = self.pdn.package
            inductors = [
                Inductor(PKG_VDD_IND, PKG_VDD, pkg.inductance),
                Inductor(PKG_GND, PKG_GND_IND, pkg.inductance),
            ]
            if pkg.decap > 0:
                capacitors.append(Capacitor(PKG_VDD, PKG_GND, pkg.decap))
        self.engine = TransientEngine(
            self.pdn.circuit, capacitors=capacitors, inductors=inductors, dt=dt
        )
        self.dt = dt

    # ------------------------------------------------------------------
    def load_step(
        self,
        idle_activity: float = 0.0,
        active_activity: float = 1.0,
        warmup_steps: int = 120,
        step_steps: int = 200,
        probe_layer: Optional[int] = None,
    ) -> TransientTrace:
        """Settle at the idle point, step every layer to active, record.

        Returns a trace with a ``supply`` probe at the centre cell of
        ``probe_layer`` (default: the top layer, farthest from the pads
        in the regular PDN).
        """
        pdn = self.pdn
        n_layers = pdn.stack.n_layers
        idle = pdn._load_current_vector([idle_activity] * n_layers, None)
        active = pdn._load_current_vector([active_activity] * n_layers, None)
        t_step = warmup_steps * self.dt

        def loads(t: float) -> np.ndarray:
            return active if t >= t_step else idle

        layer = n_layers - 1 if probe_layer is None else probe_layer
        mid = pdn.geometry.grid_nodes // 2
        probes: Dict[str, tuple] = {
            "vdd": ("vdd", layer, mid, mid),
            "gnd": ("gnd", layer, mid, mid),
        }
        self.last_step_index = warmup_steps

        # Pre-charge the storage elements near the DC operating point:
        # every cell decap at nominal Vdd, the on-package decap at the
        # full supply voltage, and the package inductors carrying the
        # idle supply current.  The warm-up settles the residual.
        from repro.pdn.stacked3d import StackedPDN3D

        is_stacked = isinstance(pdn, StackedPDN3D)
        vdd = pdn.stack.processor.vdd
        supply = pdn.stack.stack_supply_voltage if is_stacked else vdd
        cap_v0 = np.full(len(self.engine.capacitors), vdd)
        if pdn.package_inductor_nodes and pdn.package.decap > 0:
            cap_v0[-1] = supply
        ind_i0 = None
        if self.engine.inductors:
            # Voltage stacking recycles charge: the supply sees only one
            # layer's worth of the total idle current.
            idle_total = float(idle.sum()) / (n_layers if is_stacked else 1)
            ind_i0 = np.full(len(self.engine.inductors), idle_total)
        return self.engine.run(
            steps=warmup_steps + step_steps,
            load_currents=loads,
            probes=probes,
            initial_cap_voltages=cap_v0,
            initial_inductor_currents=ind_i0,
        )

    def supply_waveform(self, trace: TransientTrace) -> np.ndarray:
        """Local supply headroom (v_vdd - v_gnd) over time (V)."""
        return trace.probe("vdd") - trace.probe("gnd")

    def first_droop(self, trace: TransientTrace) -> float:
        """Worst post-step headroom dip below nominal Vdd (V).

        The cold-start charge-up of the decap (capacitors begin at 0 V)
        is excluded; only samples from the load step onward count.
        """
        start = getattr(self, "last_step_index", 0)
        headroom = self.supply_waveform(trace)[start:]
        return float(max(0.0, self.pdn.stack.processor.vdd - headroom.min()))
