"""Regular 3D PDN with SC converters providing *all* the power.

The comparison case of paper Fig. 8 (after Zhou et al. [19]): a
conventional parallel PDN whose off-chip supply is ``2 Vdd``; on-die
2:1 SC converters step the distribution rail down to ``Vdd`` and carry
the *entire* load current — unlike voltage stacking, where they only
carry the inter-layer mismatch.

Each layer therefore has three nets: the ``2 Vdd`` distribution net
(paralleled through TSV tiers like a regular PDN's Vdd net), the
regulated ``Vdd`` net, and ground.  Converter cells sit per core
between the distribution and ground nets with their outputs on the
local Vdd net; loads draw from Vdd to ground.

The experiment driver keeps its closed-form version of this design (it
is what the sweep uses — no grid in the loop); this class exists to
validate that shortcut against a full grid solve and to expose the
spatial quantities (per-pad currents, IR maps) the analytic path
cannot.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config.converters import SCConverterSpec, default_sc_spec
from repro.config.stackups import StackConfig
from repro.config.technology import (
    C4Technology,
    OnChipMetal,
    PackageModel,
    TSVTechnology,
)
from repro.pdn.builder import (
    PKG_GND,
    PKG_VDD,
    BasePDN3D,
    add_net_grid,
    connect_bundles,
    connect_bundles_to_node,
)
from repro.pdn.geometry import cells_to_arrays, distribute_per_core
from repro.pdn.pads import build_pad_array
from repro.pdn.results import PDNResult
from repro.pdn.tsv import build_tsv_arrays
from repro.regulator.compact import SCCompactModel
from repro.utils.validation import check_positive_int


class RegularSCPDN3D(BasePDN3D):
    """Parallel 3D PDN fed through full-power 2:1 SC conversion."""

    def __init__(
        self,
        stack: StackConfig,
        converters_per_core: int = 5,
        converter_spec: Optional[SCConverterSpec] = None,
        c4: Optional[C4Technology] = None,
        tsv: Optional[TSVTechnology] = None,
        metal: Optional[OnChipMetal] = None,
        package: Optional[PackageModel] = None,
    ):
        check_positive_int("converters_per_core", converters_per_core)
        super().__init__(stack, c4=c4, tsv=tsv, metal=metal, package=package)
        self.converters_per_core = converters_per_core
        self.converter_spec = converter_spec or default_sc_spec()
        self.compact_model = SCCompactModel(self.converter_spec)
        self.pad_array = build_pad_array(stack, self.c4, self.geometry)
        self.tsv_arrays = build_tsv_arrays(stack, self.tsv, self.geometry)
        self.dist_ids = []  # the 2 Vdd distribution net, per layer
        self._converter_multiplicity: Optional[np.ndarray] = None
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        circuit = self.circuit
        stack = self.stack
        n = stack.n_layers
        vdd = stack.processor.vdd
        edge_r = self.metal.grid_edge_resistance(self.geometry.cell_size)
        # Regulated Vdd and GND nets (named as usual so IR maps work),
        # plus the 2 Vdd distribution net.
        self._add_layer_grids(edge_r)
        for layer in range(n):
            self.dist_ids.append(
                add_net_grid(circuit, layer, "dist", self.geometry, edge_r)
            )

        # Off-chip 2 Vdd supply into the distribution net's pads.
        self._add_supply(2.0 * vdd)
        self._record_group(
            connect_bundles_to_node(
                circuit,
                PKG_VDD,
                self.dist_ids[0],
                self.pad_array.vdd_cells,
                self.pad_array.pad_resistance,
                tag="c4.vdd",
            )
        )
        self._record_group(
            connect_bundles_to_node(
                circuit,
                PKG_GND,
                self.gnd_ids[0],
                self.pad_array.gnd_cells,
                self.pad_array.pad_resistance,
                tag="c4.gnd",
            )
        )

        # TSV tiers parallel the distribution and ground nets upward.
        for tier in range(n - 1):
            self._record_group(
                connect_bundles(
                    circuit,
                    self.dist_ids[tier],
                    self.dist_ids[tier + 1],
                    self.tsv_arrays.vdd_cells,
                    self.tsv_arrays.tsv_resistance,
                    tag=f"tsv.vdd.t{tier}",
                )
            )
            self._record_group(
                connect_bundles(
                    circuit,
                    self.gnd_ids[tier + 1],
                    self.gnd_ids[tier],
                    self.tsv_arrays.gnd_cells,
                    self.tsv_arrays.tsv_resistance,
                    tag=f"tsv.gnd.t{tier}",
                )
            )

        # Full-power converters on every layer: dist -> Vdd.
        r_series = self.compact_model.r_series()
        r_par = self.compact_model.r_par()
        conv_cells = distribute_per_core(self.geometry, self.converters_per_core)
        cj, ci, cm = cells_to_arrays(conv_cells)
        multiplicities = []
        for layer in range(n):
            top_ids = self.dist_ids[layer][cj, ci]
            bottom_ids = self.gnd_ids[layer][cj, ci]
            mid_ids = self.vdd_ids[layer][cj, ci]
            circuit.add_converters(
                top_ids, bottom_ids, mid_ids, r_series / cm, tag=f"sc.l{layer}"
            )
            circuit.add_resistors(
                top_ids, bottom_ids, r_par / cm, tag=f"scpar.l{layer}"
            )
            multiplicities.append(cm)
        self._converter_multiplicity = np.concatenate(multiplicities)

        self._add_layer_loads()

    # ------------------------------------------------------------------
    def _make_result(self, solution) -> PDNResult:
        return PDNResult(
            solution=solution,
            vdd_nominal=self.stack.processor.vdd,
            vdd_node_ids=self.vdd_ids,
            gnd_node_ids=self.gnd_ids,
            conductor_groups=self.conductor_groups,
            converter_multiplicity=self._converter_multiplicity,
            converter_rating=self.converter_spec.max_load_current,
        )
