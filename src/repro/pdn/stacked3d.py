"""The voltage-stacked (charge-recycled) 3D PDN — paper Fig. 4b.

The ``N`` layers' supply/ground nets form a series ladder of ``N+1``
rails: layer ``l``'s GND net is rail ``l`` and its Vdd net is rail
``l+1`` (0-based layers).  Rail 0 returns to the board through the GND
C4 pads; rail ``N`` receives the boosted ``N * Vdd`` supply through
through-via stacks (one per Vdd pad, crossing ``N-1`` layer interfaces).
Adjacent layers share their intermediate rail through the tier's full
TSV allocation, and every intermediate rail is regulated by a bank of
push-pull 2:1 SC converters spanning its neighbouring rails (the
multi-output ladder of Sec. 2.1).

Because all layers share the same stack current, the off-chip and
cross-layer current density is independent of layer count — the property
behind the V-S PDN's flat EM-lifetime curves in Fig. 5.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.config.converters import SCConverterSpec, default_sc_spec
from repro.config.stackups import StackConfig
from repro.config.technology import (
    C4Technology,
    OnChipMetal,
    PackageModel,
    TSVTechnology,
)
from repro.errors import FaultInjectionError
from repro.pdn.builder import (
    PKG_GND,
    PKG_VDD,
    BasePDN3D,
    connect_bundles,
    connect_bundles_to_node,
)
from repro.pdn.geometry import cells_to_arrays, distribute_per_core
from repro.pdn.pads import (
    C4_GND_TAG,
    C4_VDD_TAG,
    THROUGH_VIA_KEY,
    build_pad_array,
)
from repro.pdn.results import PDNResult
from repro.pdn.tsv import build_tsv_arrays, rail_tag
from repro.regulator.compact import SCCompactModel
from repro.utils.validation import check_positive_int


class StackedPDN3D(BasePDN3D):
    """Charge-recycled voltage-stacked power delivery for an N-layer stack.

    Parameters
    ----------
    stack:
        Stack design point; ``stack.n_layers`` must be >= 2.
    converters_per_core:
        2:1 SC cells regulating each intermediate rail, per core
        (the Fig. 6 / Fig. 8 sweep variable; paper studies 2-8).
    converter_spec:
        Converter electrical parameters; the compact model derives the
        stamped ``RSERIES`` and the parasitic shunt from it.
    converter_fsw:
        Switching frequency for the stamped compact model: ``None``
        (nominal, open loop), a scalar (all banks), or a sequence of
        ``n_layers - 1`` per-rail frequencies (a closed-loop outer loop
        rebuilds the PDN with modulated per-bank frequencies — see
        :mod:`repro.pdn.closedloop`).
    """

    def __init__(
        self,
        stack: StackConfig,
        converters_per_core: int = 8,
        converter_spec: Optional[SCConverterSpec] = None,
        converter_fsw: Optional[float] = None,
        c4: Optional[C4Technology] = None,
        tsv: Optional[TSVTechnology] = None,
        metal: Optional[OnChipMetal] = None,
        package: Optional[PackageModel] = None,
        package_inductor_nodes: bool = False,
    ):
        if stack.n_layers < 2:
            raise ValueError("voltage stacking requires at least 2 layers")
        check_positive_int("converters_per_core", converters_per_core)
        super().__init__(
            stack,
            c4=c4,
            tsv=tsv,
            metal=metal,
            package=package,
            package_inductor_nodes=package_inductor_nodes,
        )
        self.converters_per_core = converters_per_core
        self.converter_spec = converter_spec or default_sc_spec()
        self.compact_model = SCCompactModel(self.converter_spec)
        if converter_fsw is None or np.isscalar(converter_fsw):
            self.rail_fsw = [converter_fsw] * (stack.n_layers - 1)
        else:
            self.rail_fsw = [float(f) for f in converter_fsw]
            if len(self.rail_fsw) != stack.n_layers - 1:
                raise ValueError(
                    f"converter_fsw must have {stack.n_layers - 1} per-rail "
                    f"entries, got {len(self.rail_fsw)}"
                )
        self.converter_fsw = converter_fsw
        self.pad_array = build_pad_array(stack, self.c4, self.geometry)
        self.tsv_arrays = build_tsv_arrays(stack, self.tsv, self.geometry)
        self._converter_multiplicity: Optional[np.ndarray] = None
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        circuit = self.circuit
        stack = self.stack
        n = stack.n_layers
        edge_r = self.metal.grid_edge_resistance(self.geometry.cell_size)
        self._add_layer_grids(edge_r)

        # Boosted off-chip supply (N * Vdd) and lumped package.
        self._add_supply(stack.stack_supply_voltage)

        # Rail 0: bottom layer's GND net returns through the GND pads.
        self._record_group(
            connect_bundles_to_node(
                circuit,
                PKG_GND,
                self.gnd_ids[0],
                self.pad_array.gnd_cells,
                self.pad_array.pad_resistance,
                tag=C4_GND_TAG,
            )
        )

        # Rail N: the top layer's Vdd net is fed by through-via stacks
        # (pad + one TSV segment per crossed interface, in series).
        via_segments = max(1, n - 1)
        j, i, m = cells_to_arrays(self.pad_array.vdd_cells)
        node_id = circuit.node(PKG_VDD)
        n1 = np.full(len(m), node_id, dtype=int)
        n2 = self.vdd_ids[n - 1][j, i]
        resistance = (
            self.pad_array.pad_resistance
            + via_segments * self.tsv_arrays.tsv_resistance
        ) / m
        ref = circuit.add_resistors(n1, n2, resistance, tag=C4_VDD_TAG)
        from repro.pdn.results import ConductorGroup

        # The same branch stresses one pad and ``via_segments`` TSV
        # segments per conductor; register both populations.
        self._record_group(
            ConductorGroup(tag=C4_VDD_TAG, ref=ref, multiplicity=m, segments=1)
        )
        self.conductor_groups[THROUGH_VIA_KEY] = ConductorGroup(
            tag=C4_VDD_TAG, ref=ref, multiplicity=m, segments=via_segments
        )

        # Intermediate rails: layer (r-1) Vdd net <-> layer r GND net via
        # the tier's full TSV allocation.
        for rail in range(1, n):
            self._record_group(
                connect_bundles(
                    circuit,
                    self.vdd_ids[rail - 1],
                    self.gnd_ids[rail],
                    self.tsv_arrays.rail_cells,
                    self.tsv_arrays.tsv_resistance,
                    tag=rail_tag(rail),
                )
            )

        # SC converter banks regulating every intermediate rail.
        conv_cells = self._converter_cells()
        cj, ci, cm = cells_to_arrays(conv_cells)
        multiplicities = []
        for rail in range(1, n):
            r_series = self.compact_model.r_series(self.rail_fsw[rail - 1])
            r_par = self.compact_model.r_par(self.rail_fsw[rail - 1])
            top_ids = self.vdd_ids[rail][cj, ci]      # rail + 1
            bottom_ids = self.gnd_ids[rail - 1][cj, ci]  # rail - 1
            mid_ids = self.vdd_ids[rail - 1][cj, ci]  # rail (output)
            circuit.add_converters(
                top_ids,
                bottom_ids,
                mid_ids,
                r_series / cm,
                tag=f"sc.rail{rail}",
            )
            # Frequency-proportional parasitic loss across the input port.
            circuit.add_resistors(
                top_ids, bottom_ids, r_par / cm, tag=f"scpar.rail{rail}"
            )
            multiplicities.append(cm)
        self._converter_multiplicity = np.concatenate(multiplicities)

        self._add_layer_loads()

    # ------------------------------------------------------------------
    def _converter_cells(self):
        """Grid cells (with multiplicities) hosting each rail's bank.

        The base model follows the paper's uniform per-core
        distribution; placement studies override this hook.
        """
        return distribute_per_core(self.geometry, self.converters_per_core)

    # ------------------------------------------------------------------
    def _make_result(self, solution) -> PDNResult:
        return PDNResult(
            solution=solution,
            vdd_nominal=self.stack.processor.vdd,
            vdd_node_ids=self.vdd_ids,
            gnd_node_ids=self.gnd_ids,
            conductor_groups=self.conductor_groups,
            converter_multiplicity=self._converter_multiplicity,
            converter_rating=self.converter_spec.max_load_current,
        )

    @property
    def total_converters(self) -> int:
        """All converter cells across the stack."""
        return (
            (self.stack.n_layers - 1)
            * self.converters_per_core
            * self.stack.processor.core_count
        )

    @property
    def converter_multiplicity(self) -> Optional[np.ndarray]:
        """Surviving SC cells behind each stamped converter branch.

        Fault injection decrements this array in place as converter
        cells are killed.
        """
        return self._converter_multiplicity

    # ------------------------------------------------------------------
    def isolation_tags(self, layer: Optional[int] = None) -> Dict[str, List[str]]:
        """Everything that must fail open to electrically isolate ``layer``.

        In the series ladder a layer spans rails ``l`` (its GND net) and
        ``l + 1`` (its Vdd net), so isolating it requires opening both
        interface tiers — the rail TSVs, or the C4 arrays at the ladder's
        ends — plus the SC converter banks and their parasitic branches
        bridging those rails.  Defaults to the top layer.
        """
        n = self.stack.n_layers
        if layer is None:
            layer = n - 1
        if not 0 <= layer < n:
            raise FaultInjectionError(f"layer {layer} outside 0..{n - 1}")
        groups: List[str] = []
        # Lower interface: rail ``layer``.
        groups.append(rail_tag(layer) if layer > 0 else C4_GND_TAG)
        # Upper interface: rail ``layer + 1``.
        groups.append(rail_tag(layer + 1) if layer < n - 1 else C4_VDD_TAG)
        # Converter banks (and their parasitics) bridging either rail.
        rails = [r for r in (layer, layer + 1) if 1 <= r <= n - 1]
        return {
            "groups": groups,
            "converters": [f"sc.rail{r}" for r in rails],
            "resistors": [f"scpar.rail{r}" for r in rails],
        }
