"""The conventional (parallel) 3D PDN — paper Fig. 4a.

Every layer's Vdd net is paralleled with the next layer's through the
power-TSV tier, and likewise for the GND nets; all off-chip current
enters through the bottom layer's C4 pads.  Stacking more layers
multiplies the current through both the pad array and the lower TSV
tiers, which is the root of the regular PDN's EM-scaling problem
(Fig. 5).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config.stackups import StackConfig
from repro.config.technology import (
    C4Technology,
    OnChipMetal,
    PackageModel,
    TSVTechnology,
)
from repro.errors import FaultInjectionError
from repro.pdn.builder import (
    PKG_GND,
    PKG_VDD,
    BasePDN3D,
    connect_bundles,
    connect_bundles_to_node,
)
from repro.pdn.pads import C4_GND_TAG, C4_VDD_TAG, build_pad_array
from repro.pdn.tsv import build_tsv_arrays, tier_tag


class RegularPDN3D(BasePDN3D):
    """Conventional parallel power delivery for an N-layer stack."""

    def __init__(
        self,
        stack: StackConfig,
        c4: Optional[C4Technology] = None,
        tsv: Optional[TSVTechnology] = None,
        metal: Optional[OnChipMetal] = None,
        package: Optional[PackageModel] = None,
        package_inductor_nodes: bool = False,
    ):
        super().__init__(
            stack,
            c4=c4,
            tsv=tsv,
            metal=metal,
            package=package,
            package_inductor_nodes=package_inductor_nodes,
        )
        self.pad_array = build_pad_array(stack, self.c4, self.geometry)
        self.tsv_arrays = build_tsv_arrays(stack, self.tsv, self.geometry)
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        circuit = self.circuit
        edge_r = self.metal.grid_edge_resistance(self.geometry.cell_size)
        self._add_layer_grids(edge_r)

        # Off-chip supply and lumped package.
        self._add_supply(self.stack.processor.vdd)

        # C4 pads into the bottom layer (layer 0).
        self._record_group(
            connect_bundles_to_node(
                circuit,
                PKG_VDD,
                self.vdd_ids[0],
                self.pad_array.vdd_cells,
                self.pad_array.pad_resistance,
                tag=C4_VDD_TAG,
            )
        )
        self._record_group(
            connect_bundles_to_node(
                circuit,
                PKG_GND,
                self.gnd_ids[0],
                self.pad_array.gnd_cells,
                self.pad_array.pad_resistance,
                tag=C4_GND_TAG,
            )
        )

        # TSV tiers between adjacent layers, both nets in parallel.
        for tier in range(self.stack.n_layers - 1):
            self._record_group(
                connect_bundles(
                    circuit,
                    self.vdd_ids[tier],
                    self.vdd_ids[tier + 1],
                    self.tsv_arrays.vdd_cells,
                    self.tsv_arrays.tsv_resistance,
                    tag=tier_tag("vdd", tier),
                )
            )
            self._record_group(
                connect_bundles(
                    circuit,
                    self.gnd_ids[tier + 1],
                    self.gnd_ids[tier],
                    self.tsv_arrays.gnd_cells,
                    self.tsv_arrays.tsv_resistance,
                    tag=tier_tag("gnd", tier),
                )
            )

        self._add_layer_loads()

    # ------------------------------------------------------------------
    def isolation_tags(self, layer: Optional[int] = None) -> Dict[str, List[str]]:
        """Everything that must fail open to electrically isolate ``layer``.

        A regular-PDN layer hangs off the TSV tiers above and below it
        (both nets), plus the C4 arrays when it is the bottom layer.
        Opening all of them turns the layer into a floating island — the
        worst-case contingency :func:`repro.faults.severed_layer_plan`
        replays.  Defaults to the top layer, the cut with the fewest
        severed branches.
        """
        n = self.stack.n_layers
        if layer is None:
            layer = n - 1
        if not 0 <= layer < n:
            raise FaultInjectionError(f"layer {layer} outside 0..{n - 1}")
        groups: List[str] = []
        if layer > 0:
            groups += [tier_tag("vdd", layer - 1), tier_tag("gnd", layer - 1)]
        else:
            groups += [C4_VDD_TAG, C4_GND_TAG]
        if layer < n - 1:
            groups += [tier_tag("vdd", layer), tier_tag("gnd", layer)]
        return {"groups": groups}
