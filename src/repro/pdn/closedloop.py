"""Closed-loop converter control at the system level — an extension.

The paper models open-loop SC converters and leaves closed-loop control
as future work (Secs. 3.1 and 5.3).  This module closes that loop at the
system level: the PDN is solved, each rail bank's switching frequency is
re-commanded from its observed per-converter load via the closed-loop
policy, the PDN is re-stamped at the new frequencies, and the process
iterates to a fixed point.  Because parasitic loss scales with
frequency, lightly-loaded banks slow down and the system recovers most
of the efficiency that Fig. 8 shows the open-loop design losing when
converters are over-provisioned.

The outer iteration rides on the shared hardened driver
(:func:`repro.contracts.fixedpoint.fixed_point`): plain Picard while it
converges (bit-identical to the legacy loop), adaptive under-relaxation
on sustained residual growth, oscillation/divergence detection, and
graceful degradation — a non-converged solve returns the best-residual
operating point flagged ``degraded=True`` with the full residual trace
instead of silently handing back the last iterate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.config.stackups import StackConfig
from repro.contracts.fixedpoint import fixed_point
from repro.pdn.results import PDNResult
from repro.pdn.stacked3d import StackedPDN3D
from repro.regulator.control import ClosedLoopControl
from repro.utils.validation import check_positive_int


@dataclass
class ClosedLoopResult:
    """Closed-loop operating point (converged, or best-effort degraded)."""

    #: Final PDN result at the accepted frequencies.
    result: PDNResult
    #: Accepted per-rail switching frequencies (Hz).
    rail_frequencies: List[float]
    #: Frequency history across iterations (list of per-rail lists).
    history: List[List[float]]
    #: Whether the fixed point converged within tolerance.
    converged: bool
    #: True when the loop did not converge and ``result`` is the
    #: best-residual iterate (graceful degradation) — such points must be
    #: surfaced, not averaged into aggregates.
    degraded: bool = False
    #: Relative frequency residual per iteration.
    residual_trace: List[float] = field(default_factory=list)
    #: True when a period-2 frequency cycle was detected.
    oscillating: bool = False

    @property
    def iterations(self) -> int:
        return len(self.history)


class ClosedLoopSystemSolver:
    """Fixed-point iteration of per-rail frequency modulation.

    Parameters mirror :class:`StackedPDN3D`; each iteration rebuilds the
    PDN with updated per-rail frequencies (the matrix changes, so the
    factorisation cannot be reused across iterations — this is the cost
    of closed-loop evaluation the paper defers).
    """

    def __init__(
        self,
        stack: StackConfig,
        converters_per_core: int = 8,
        policy: Optional[ClosedLoopControl] = None,
        max_iterations: int = 8,
        tolerance: float = 0.02,
        **pdn_kwargs,
    ):
        check_positive_int("max_iterations", max_iterations)
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self.stack = stack
        self.converters_per_core = converters_per_core
        self.policy = policy or ClosedLoopControl()
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.pdn_kwargs = pdn_kwargs

    # ------------------------------------------------------------------
    def _rail_loads(self, pdn: StackedPDN3D, result: PDNResult) -> np.ndarray:
        """Mean per-converter |load| of each rail bank (A)."""
        per_cell = np.abs(result.solution.converter_output_currents())
        mult = pdn._converter_multiplicity  # noqa: SLF001 - same package
        per_converter = per_cell / mult
        banks = pdn.stack.n_layers - 1
        cells_per_bank = len(per_converter) // banks
        loads = np.empty(banks)
        for b in range(banks):
            chunk = slice(b * cells_per_bank, (b + 1) * cells_per_bank)
            weights = mult[chunk]
            loads[b] = np.average(per_converter[chunk], weights=weights)
        return loads

    def solve(self, layer_activities: Optional[Sequence[float]] = None) -> ClosedLoopResult:
        """Iterate to the closed-loop fixed point for one workload.

        On non-convergence the best-residual operating point is returned
        flagged ``degraded=True`` (never an exception) so sweeps can
        surface the point instead of crashing.
        """
        history: List[List[float]] = []
        results: List[PDNResult] = []
        spec_holder = {}

        def step(rail_fsw: np.ndarray) -> np.ndarray:
            pdn = StackedPDN3D(
                self.stack,
                converters_per_core=self.converters_per_core,
                converter_fsw=list(rail_fsw),
                **self.pdn_kwargs,
            )
            spec_holder["spec"] = pdn.converter_spec
            result = pdn.solve(layer_activities=layer_activities)
            results.append(result)
            loads = self._rail_loads(pdn, result)
            new_fsw = [
                self.policy.frequency(spec_holder["spec"], load) for load in loads
            ]
            history.append(new_fsw)
            return np.asarray(new_fsw)

        # The nominal-frequency start vector reproduces the legacy
        # ``converter_fsw=None`` first iteration exactly (the compact
        # model treats None as the nominal switching frequency), and
        # ``min_iterations=2`` reproduces its "never accept the first
        # iterate" convergence test.
        probe = StackedPDN3D(
            self.stack,
            converters_per_core=self.converters_per_core,
            **self.pdn_kwargs,
        )
        nominal = probe.converter_spec.switching_frequency
        x0 = np.full(self.stack.n_layers - 1, nominal)

        fp = fixed_point(
            step,
            x0,
            tolerance=self.tolerance,
            max_iterations=self.max_iterations,
            min_iterations=2,
            on_failure="degrade",
        )
        accepted = results[fp.best_iteration - 1] if results else None
        return ClosedLoopResult(
            result=accepted,
            rail_frequencies=[float(f) for f in fp.x],
            history=history,
            converged=fp.converged,
            degraded=fp.degraded,
            residual_trace=list(fp.residual_trace),
            oscillating=fp.oscillating,
        )


def closed_loop_efficiency_gain(
    stack: StackConfig,
    converters_per_core: int,
    layer_activities: Sequence[float],
    **pdn_kwargs,
) -> dict:
    """Compare open- vs closed-loop system efficiency for one workload.

    Returns ``{"open_loop": eff, "closed_loop": eff, "gain": delta}``.
    """
    open_pdn = StackedPDN3D(
        stack, converters_per_core=converters_per_core, **pdn_kwargs
    )
    open_eff = open_pdn.solve(layer_activities=layer_activities).efficiency()
    solver = ClosedLoopSystemSolver(
        stack, converters_per_core=converters_per_core, **pdn_kwargs
    )
    closed = solver.solve(layer_activities=layer_activities)
    closed_eff = closed.result.efficiency()
    return {
        "open_loop": open_eff,
        "closed_loop": closed_eff,
        "gain": closed_eff - open_eff,
        "converged": closed.converged,
        "degraded": closed.degraded,
    }
