"""C4 pad array construction.

The pad array covers the die at the C4 pitch (Table 1: 200 um, ~1100
sites for the 44.12 mm^2 die).  A fraction of the sites delivers power —
half Vdd, half GND, spread uniformly (real designs interleave
checkerboard-style; at model-grid resolution a uniform spread is
equivalent) — and the rest are available for I/O, which is exactly the
scarce-resource trade-off of Fig. 5b.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.stackups import StackConfig
from repro.config.technology import C4Technology, default_c4
from repro.pdn.geometry import CellMultiplicity, GridGeometry, distribute_uniform

#: Canonical conductor-group tags of the power C4 arrays — the names the
#: builders stamp and the fault-injection subsystem addresses.
C4_VDD_TAG = "c4.vdd"
C4_GND_TAG = "c4.gnd"
#: Registry key of the voltage-stacked through-via population (shares its
#: branches with ``C4_VDD_TAG``; see ``StackedPDN3D``).
THROUGH_VIA_KEY = "tvia.vdd"


@dataclass(frozen=True)
class PadArray:
    """Resolved pad placement for one design point."""

    #: Per-cell multiplicity of Vdd pads.
    vdd_cells: CellMultiplicity
    #: Per-cell multiplicity of GND pads.
    gnd_cells: CellMultiplicity
    #: Total Vdd pad count.
    n_vdd: int
    #: Total GND pad count.
    n_gnd: int
    #: Total pad sites available on the die.
    total_sites: int
    #: Single-pad resistance (ohm).
    pad_resistance: float

    @property
    def power_sites_fraction(self) -> float:
        """Fraction of all sites actually used for power delivery."""
        return (self.n_vdd + self.n_gnd) / self.total_sites

    @property
    def io_pads(self) -> int:
        """Sites left over for I/O."""
        return self.total_sites - self.n_vdd - self.n_gnd


def build_pad_array(
    stack: StackConfig, c4: C4Technology = None, geometry: GridGeometry = None
) -> PadArray:
    """Place the power pads for ``stack`` on the model grid."""
    c4 = c4 or default_c4()
    geometry = geometry or GridGeometry.from_stack(stack)
    per_side = c4.pads_per_side(stack.processor.die_side)
    total_sites = per_side**2
    n_vdd = stack.pads.vdd_pads(total_sites, stack.processor.core_count)
    n_gnd = n_vdd  # symmetric supply/return allocation
    if n_vdd + n_gnd > total_sites:
        raise ValueError(
            f"pad allocation needs {n_vdd + n_gnd} power sites but the die "
            f"only has {total_sites}"
        )
    return PadArray(
        vdd_cells=distribute_uniform(geometry, n_vdd),
        gnd_cells=distribute_uniform(geometry, n_gnd),
        n_vdd=n_vdd,
        n_gnd=n_gnd,
        total_sites=total_sites,
        pad_resistance=c4.resistance,
    )
