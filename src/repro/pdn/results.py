"""PDN solve results: IR drop, conductor currents, efficiency.

:class:`PDNResult` wraps one DC operating point of a 3D PDN and exposes
exactly the quantities the paper's experiments consume:

* the per-layer IR-drop map and its chip-wide maximum (Fig. 6),
* per-conductor current profiles of the C4 pad and TSV arrays, expanded
  from bundled model branches (Fig. 5 via the EM model),
* system power efficiency — load power over off-chip source power
  (Fig. 8) — and converter loading against the 100 mA rating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.grid.netlist import ElementRef
from repro.grid.solution import Solution


@dataclass(frozen=True)
class ConductorGroup:
    """A population of identical physical conductors behind one tag.

    A model branch at multiplicity ``m`` stands for ``m`` parallel
    conductors sharing its current equally; ``segments`` further
    multiplies the population for series stacks (a through-via crossing
    ``k`` layers contributes ``k`` EM-stressed segments all carrying the
    branch current).
    """

    #: Element tag in the circuit.
    tag: str
    #: Reference to the resistor bundle.
    ref: ElementRef
    #: Per-bundle conductor multiplicity (aligned with ``ref.indices``).
    multiplicity: np.ndarray
    #: Series segments per conductor (1 for pads and single-tier TSVs).
    segments: int = 1

    @property
    def conductor_count(self) -> int:
        return int(self.multiplicity.sum()) * self.segments

    def per_conductor_currents(self, solution: Solution) -> np.ndarray:
        """|current| of every physical conductor in the group (A)."""
        bundle_currents = np.abs(solution.resistor_currents(self.tag))
        if len(bundle_currents) != len(self.multiplicity):
            raise ValueError(
                f"group {self.tag!r}: {len(bundle_currents)} branches but "
                f"{len(self.multiplicity)} multiplicities"
            )
        # Fully-failed bundles have multiplicity 0 (and carry no current
        # once opened); guard the divide and let np.repeat drop them.
        per_conductor = bundle_currents / np.maximum(self.multiplicity, 1)
        return np.repeat(per_conductor, self.multiplicity * self.segments)


class PDNResult:
    """One solved operating point of a 3D PDN."""

    def __init__(
        self,
        solution: Solution,
        vdd_nominal: float,
        vdd_node_ids: List[np.ndarray],
        gnd_node_ids: List[np.ndarray],
        conductor_groups: Dict[str, ConductorGroup],
        converter_multiplicity: Optional[np.ndarray] = None,
        converter_rating: Optional[float] = None,
    ):
        self.solution = solution
        self.vdd_nominal = vdd_nominal
        self._vdd_ids = vdd_node_ids
        self._gnd_ids = gnd_node_ids
        self.conductor_groups = conductor_groups
        self._converter_multiplicity = converter_multiplicity
        self._converter_rating = converter_rating
        #: ``repro.contracts.ContractReport`` attached by the PDN builder
        #: when contract checking is enabled; None otherwise.
        self.contracts = None

    @property
    def diagnostics(self):
        """Resilient-solve diagnostics, or None for a strict solve."""
        return self.solution.diagnostics

    @property
    def degraded(self) -> bool:
        """True for pruned/fallback solves or recorded contract violations."""
        if self.diagnostics is not None and self.diagnostics.degraded:
            return True
        return self.contracts is not None and not self.contracts.passed

    # ------------------------------------------------------------------
    # voltage noise
    # ------------------------------------------------------------------
    @property
    def n_layers(self) -> int:
        return len(self._vdd_ids)

    def ir_drop_map(self, layer: int) -> np.ndarray:
        """Per-cell IR drop (V) of one layer: Vdd_nom - local headroom."""
        v_vdd = self.solution.voltage_by_id(self._vdd_ids[layer])
        v_gnd = self.solution.voltage_by_id(self._gnd_ids[layer])
        return self.vdd_nominal - (v_vdd - v_gnd)

    def max_ir_drop(self) -> float:
        """Chip-wide worst IR drop (V) across all layers."""
        return max(float(self.ir_drop_map(l).max()) for l in range(self.n_layers))

    def max_ir_drop_fraction(self) -> float:
        """Worst IR drop as a fraction of nominal Vdd (the Fig. 6 metric)."""
        return self.max_ir_drop() / self.vdd_nominal

    # ------------------------------------------------------------------
    # conductor currents for EM
    # ------------------------------------------------------------------
    def conductor_currents(self, prefix: str) -> np.ndarray:
        """Per-conductor |current| over all groups whose tag starts with
        ``prefix`` ("c4", "tsv", "tvia")."""
        parts = [
            group.per_conductor_currents(self.solution)
            for tag, group in self.conductor_groups.items()
            if tag.startswith(prefix)
        ]
        if not parts:
            raise KeyError(f"no conductor groups with prefix {prefix!r}")
        return np.concatenate(parts)

    def has_group_prefix(self, prefix: str) -> bool:
        return any(tag.startswith(prefix) for tag in self.conductor_groups)

    # ------------------------------------------------------------------
    # power efficiency (Fig. 8)
    # ------------------------------------------------------------------
    def load_power(self) -> float:
        """Power actually delivered to the logic loads (W)."""
        return self.solution.isource_power()

    def source_power(self) -> float:
        """Power drawn from the off-chip supply (W)."""
        return self.solution.vsource_power()

    def efficiency(self) -> float:
        """System power efficiency: load power / off-chip power."""
        source = self.source_power()
        if source <= 0:
            return 0.0
        return self.load_power() / source

    # ------------------------------------------------------------------
    # converter loading (V-S only)
    # ------------------------------------------------------------------
    def converter_currents(self) -> np.ndarray:
        """|output current| of every physical converter cell (A)."""
        if self._converter_multiplicity is None:
            raise RuntimeError("this PDN has no SC converters")
        bundles = np.abs(self.solution.converter_output_currents())
        # Dead banks have multiplicity 0 and zero stamped current; guard
        # the divide and let np.repeat drop them from the profile.
        per_cell = bundles / np.maximum(self._converter_multiplicity, 1)
        return np.repeat(per_cell, self._converter_multiplicity)

    def max_converter_current(self) -> float:
        """Worst per-converter loading (A)."""
        return float(self.converter_currents().max())

    def converters_within_rating(self) -> bool:
        """True when every converter respects its max-load rating.

        The paper skips Fig. 6 data points that violate the 100 mA limit.
        """
        if self._converter_rating is None:
            raise RuntimeError("this PDN has no SC converters")
        return self.max_converter_current() <= self._converter_rating
