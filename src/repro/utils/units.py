"""Unit conversion helpers.

All quantities inside the library are stored in base SI units (metres,
ohms, volts, amperes, watts, seconds, hertz, kelvin).  The paper's tables
quote values in engineering units (micrometres, milliohms, ...), so these
helpers keep the conversion sites explicit and greppable instead of
scattering bare ``1e-6`` literals around the code base.
"""

from __future__ import annotations

import math

#: Multiplicative prefix factors, used by :func:`format_engineering`.
_ENG_PREFIXES = {
    -15: "f",
    -12: "p",
    -9: "n",
    -6: "u",
    -3: "m",
    0: "",
    3: "k",
    6: "M",
    9: "G",
    12: "T",
}


def from_micro(value: float) -> float:
    """Convert a value expressed in micro-units (e.g. um) to base SI."""
    return value * 1e-6


def from_milli(value: float) -> float:
    """Convert a value expressed in milli-units (e.g. mOhm) to base SI."""
    return value * 1e-3


def from_nano(value: float) -> float:
    """Convert a value expressed in nano-units (e.g. nF) to base SI."""
    return value * 1e-9


def to_micro(value: float) -> float:
    """Convert a base-SI value to micro-units."""
    return value * 1e6


def to_milli(value: float) -> float:
    """Convert a base-SI value to milli-units."""
    return value * 1e3


def to_nano(value: float) -> float:
    """Convert a base-SI value to nano-units."""
    return value * 1e9


def to_percent(fraction: float) -> float:
    """Convert a 0..1 fraction to a percentage."""
    return fraction * 100.0


def format_engineering(value: float, unit: str = "", digits: int = 3) -> str:
    """Render ``value`` with an engineering (power-of-1000) prefix.

    >>> format_engineering(0.044539, "Ohm")
    '44.5 mOhm'
    >>> format_engineering(8e-9, "F")
    '8 nF'
    """
    if value == 0:
        return f"0 {unit}".strip()
    magnitude = abs(value)
    exponent = int(math.floor(math.log10(magnitude) / 3.0)) * 3
    exponent = max(min(exponent, 12), -15)
    scaled = value / 10.0**exponent
    prefix = _ENG_PREFIXES[exponent]
    text = f"{scaled:.{digits}g}"
    return f"{text} {prefix}{unit}".strip()
