"""Deterministic random-number-generator construction.

Every stochastic component of the library (workload sampling, Monte-Carlo
EM draws) accepts either an integer seed or an existing
``numpy.random.Generator``.  Routing construction through :func:`make_rng`
guarantees reproducible experiment output by default while still letting a
caller share one generator across components.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

#: Default seed used across the repository so that figures regenerate
#: bit-identically between runs.
DEFAULT_SEED = 20150607  # DAC'15 conference date.


def make_rng(seed: SeedLike = None, default: Optional[int] = DEFAULT_SEED) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (use ``default``), an ``int`` seed, or an existing
        ``Generator`` (returned unchanged so state is shared).
    default:
        Seed used when ``seed`` is ``None``.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = default
    return np.random.default_rng(seed)


def spawn_seeds(seed: SeedLike, n: int) -> list:
    """Derive ``n`` independent child generators from one seed.

    Sweeps that draw a random sample per point should give each point
    its own child stream, so one point's result does not depend on how
    many draws preceded it in the sweep.
    """
    return list(make_rng(seed).spawn(n))
