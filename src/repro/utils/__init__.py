"""Shared utilities: unit helpers, argument validation, deterministic RNG."""

from repro.utils.units import (
    from_micro,
    from_milli,
    from_nano,
    format_engineering,
    to_micro,
    to_milli,
    to_nano,
    to_percent,
)
from repro.utils.validation import (
    check_fraction,
    check_in_choices,
    check_nonnegative,
    check_positive,
    check_positive_int,
)
from repro.utils.rng import make_rng

__all__ = [
    "from_micro",
    "from_milli",
    "from_nano",
    "format_engineering",
    "to_micro",
    "to_milli",
    "to_nano",
    "to_percent",
    "check_fraction",
    "check_in_choices",
    "check_nonnegative",
    "check_positive",
    "check_positive_int",
    "make_rng",
]
