"""Small argument-validation helpers.

These raise ``ValueError``/``TypeError`` with messages that name the
offending parameter, which keeps the dataclass ``__post_init__`` bodies in
:mod:`repro.config` short and uniform.
"""

from __future__ import annotations

from typing import Iterable, TypeVar

T = TypeVar("T")


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it for chaining."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Require ``value >= 0``; return it for chaining."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``; return it for chaining."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")
    return value


def check_positive_int(name: str, value: int) -> int:
    """Require an integral value strictly greater than zero."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_in_choices(name: str, value: T, choices: Iterable[T]) -> T:
    """Require ``value`` to be one of ``choices``; return it for chaining."""
    options = tuple(choices)
    if value not in options:
        raise ValueError(f"{name} must be one of {options!r}, got {value!r}")
    return value
