"""Small argument-validation helpers.

These raise ``ValueError``/``TypeError`` with messages that name the
offending parameter, which keeps the dataclass ``__post_init__`` bodies in
:mod:`repro.config` short and uniform.
"""

from __future__ import annotations

from typing import Iterable, TypeVar

import numpy as np

T = TypeVar("T")


def check_finite(name: str, value: float) -> float:
    """Require a finite scalar; return it for chaining."""
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return float(value)


def check_finite_array(name: str, values) -> np.ndarray:
    """Require every entry to be finite, naming the first offender.

    Returns the values as a float array for chaining.
    """
    arr = np.asarray(values, dtype=float)
    bad = ~np.isfinite(arr)
    if bad.any():
        idx = int(np.argmax(bad))
        raise ValueError(
            f"{name}[{idx}] is non-finite ({arr.flat[idx]!r}); "
            f"all {name} values must be finite"
        )
    return arr


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it for chaining."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Require ``value >= 0``; return it for chaining."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``; return it for chaining."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")
    return value


def check_positive_int(name: str, value: int) -> int:
    """Require an integral value strictly greater than zero."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_in_choices(name: str, value: T, choices: Iterable[T]) -> T:
    """Require ``value`` to be one of ``choices``; return it for chaining."""
    options = tuple(choices)
    if value not in options:
        raise ValueError(f"{name} must be one of {options!r}, got {value!r}")
    return value
