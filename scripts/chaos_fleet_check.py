#!/usr/bin/env python
"""Deterministic chaos proof for the distributed sweep fleet.

Runs the same grid-10 sweep three ways and demands bit-identical values
(relative difference <= 1e-12) throughout:

1. **Serial baseline** — one supervised in-process run.
2. **Fleet under chaos** — a coordinator (``--fleet``) plus four worker
   processes with seeded ``REPRO_CHAOS`` fault plans: two workers are
   SIGKILLed mid-task (after solving, before reporting), one freezes
   past its lease deadline (its thawed, late result must be dropped by
   the idempotent commit), one duplicates a result message.  The run
   must still complete every task, record >= 2 worker deaths, >= 1
   expired lease and >= 1 reassignment, and match the baseline.
3. **Journal tear + salvage** — the chaos run's journal is torn
   mid-record; a strict ``--resume`` must refuse, ``--resume`` with
   salvage must truncate to the intact prefix, restore it bit-for-bit
   and re-run only the rest.

Every fault position derives from one fixed seed, so failures replay
exactly.  Exit status 0 = all three proofs hold.

Usage::

    python scripts/chaos_fleet_check.py [--seed N] [work_dir]
    python scripts/chaos_fleet_check.py child RUN_DIR [flags]   # internal
    python scripts/chaos_fleet_check.py worker ADDRESS [flags]  # internal

Workers run this same file, so the sweep's extractor pickles by
reference across the process boundary (``__main__`` resolves to this
script on both ends).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

TOLERANCE = 1e-12
SEED = 1337
GRID_NODES = 10
N_GROUPS = 8
N_WORKERS = 4
LEASE_TIMEOUT_S = 3.0
FREEZE_S = 6.0


def chaos_extract(outcome):
    """Deterministic per-point metrics (picklable by reference)."""
    result = outcome.unwrap()
    return (result.max_ir_drop(), result.efficiency())


def sweep_points():
    from repro.runtime import PDNSpec, SweepPoint

    points = []
    for n_layers in range(2, 2 + N_GROUPS):
        spec = PDNSpec.regular(n_layers, grid_nodes=GRID_NODES)
        points.append(SweepPoint(spec=spec))
        points.append(
            SweepPoint(
                spec=spec,
                layer_activities=(0.7,) + (1.0,) * (n_layers - 1),
            )
        )
    return points


# ----------------------------------------------------------------------
# child: one supervised run (baseline, coordinator, or resume)
# ----------------------------------------------------------------------

def run_child(args) -> int:
    from repro.errors import ResumeMismatchError
    from repro.runtime import RunSupervisor, SupervisorConfig

    run_dir = pathlib.Path(args.run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    config = SupervisorConfig(
        run_dir=str(run_dir),
        resume=args.resume,
        salvage=args.salvage,
        fleet=args.fleet,
        lease_timeout_s=LEASE_TIMEOUT_S,
        fleet_wait_s=args.fleet_wait,
        max_retries=4,  # chaos can charge one task several faults
        verbose=True,
    )
    supervisor = RunSupervisor(config=config)
    try:
        result = supervisor.run(sweep_points(), extract=chaos_extract)
    except ResumeMismatchError as exc:
        print(f"resume refused: {exc}", file=sys.stderr)
        return 3
    report = result.report
    payload = {
        "values": result.values,
        "mode": result.metrics.mode,
        "resumed": result.metrics.resumed,
        "n_tasks": len(report.tasks),
        "quarantined": report.quarantined_fingerprints(),
        "worker_deaths": report.worker_deaths,
        "leases_expired": report.leases_expired,
        "reassignments": report.reassignments,
        "workers": report.workers,
    }
    (run_dir / "values.json").write_text(json.dumps(payload, indent=2))
    return 0


def run_fleet_worker(args) -> int:
    from repro.runtime.fleet import run_worker

    summary = run_worker(
        args.address, worker_id=args.worker_id, patience_s=args.patience
    )
    print(f"worker summary: {summary}", flush=True)
    return 0


# ----------------------------------------------------------------------
# orchestration
# ----------------------------------------------------------------------

def _child_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_CHAOS", None)
    return env


def _spawn_child(run_dir, fleet=None, resume=False, salvage=False,
                 fleet_wait=20.0) -> subprocess.Popen:
    argv = [sys.executable, str(pathlib.Path(__file__).resolve()),
            "child", str(run_dir), "--fleet-wait", str(fleet_wait)]
    if fleet:
        argv += ["--fleet", fleet]
    if resume:
        argv.append("--resume")
    if salvage:
        argv.append("--salvage")
    return subprocess.Popen(argv, env=_child_env())


def _spawn_worker(address, worker_id, chaos_plan) -> subprocess.Popen:
    argv = [sys.executable, str(pathlib.Path(__file__).resolve()),
            "worker", address, "--worker-id", worker_id,
            "--patience", "10"]
    env = _child_env()
    if chaos_plan is not None:
        env["REPRO_CHAOS"] = chaos_plan.to_env()
    return subprocess.Popen(argv, env=env)


def _wait_for_fleet_file(run_dir: pathlib.Path, timeout_s: float = 30.0) -> str:
    path = run_dir / "fleet.json"
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if path.exists():
            try:
                return json.loads(path.read_text())["address"]
            except (ValueError, KeyError):
                pass
        time.sleep(0.05)
    raise RuntimeError(f"no fleet.json appeared in {run_dir}")


def _load_values(run_dir: pathlib.Path) -> dict:
    return json.loads((run_dir / "values.json").read_text())


def _worst_relative_diff(a, b) -> float:
    worst = 0.0
    for left, right in zip(a, b):
        for x, y in zip(left, right):
            scale = max(abs(x), abs(y), 1e-300)
            worst = max(worst, abs(x - y) / scale)
    return worst


def _tear_journal(run_dir: pathlib.Path) -> int:
    """Cut the journal's last record in half; returns intact task count."""
    journal = sorted(run_dir.glob("journal-*.jsonl"))[0]
    lines = journal.read_text().splitlines()
    assert len(lines) >= 3, "journal too short to tear meaningfully"
    torn = lines[-1][: max(1, len(lines[-1]) // 2)]
    journal.write_text("\n".join(lines[:-1] + [torn]) + "\n")
    return len(lines) - 2  # minus header, minus the torn record


def orchestrate(work_dir: pathlib.Path, seed: int) -> int:
    from repro.runtime.chaos import ChaosPlan

    baseline_dir = work_dir / "baseline"
    chaos_dir = work_dir / "chaos"

    print("== 1. serial baseline ==", flush=True)
    child = _spawn_child(baseline_dir)
    if child.wait(timeout=600) != 0:
        print("FAIL: baseline run did not exit cleanly")
        return 1
    baseline = _load_values(baseline_dir)
    if baseline["quarantined"]:
        print("FAIL: baseline quarantined tasks")
        return 1

    print(f"== 2. fleet under chaos (seed {seed}) ==", flush=True)
    coordinator = _spawn_child(chaos_dir, fleet="127.0.0.1:0")
    try:
        address = _wait_for_fleet_file(chaos_dir)
    except RuntimeError as exc:
        coordinator.kill()
        print(f"FAIL: {exc}")
        return 1
    # Fault positions are seed-derived over each worker's expected share
    # of tasks, so the kills land while the sweep is still in flight.
    plans = [
        ChaosPlan.seeded(seed, 2, kill=True),
        ChaosPlan.seeded(seed + 1, 2, kill=True),
        ChaosPlan.seeded(seed + 2, 2, freeze=True, freeze_s=FREEZE_S),
        ChaosPlan.seeded(seed + 3, 2, dup_result=True),
    ]
    workers = [
        _spawn_worker(address, f"chaos-w{i}", plan)
        for i, plan in enumerate(plans)
    ]
    if coordinator.wait(timeout=600) != 0:
        for worker in workers:
            worker.kill()
        print("FAIL: chaos coordinator run did not exit cleanly")
        return 1
    for worker in workers:
        try:
            worker.wait(timeout=60)
        except subprocess.TimeoutExpired:
            worker.kill()
            print("FAIL: a worker outlived the coordinator by a minute")
            return 1
    chaos = _load_values(chaos_dir)
    killed = sum(1 for w in workers if w.returncode and w.returncode < 0)
    print(
        f"chaos run: mode={chaos['mode']}, "
        f"{chaos['worker_deaths']} worker death(s), "
        f"{chaos['leases_expired']} expired lease(s), "
        f"{chaos['reassignments']} reassignment(s), "
        f"{killed} worker(s) SIGKILLed",
        flush=True,
    )
    if chaos["quarantined"]:
        print("FAIL: chaos run quarantined tasks (retry budget too small?)")
        return 1
    if chaos["worker_deaths"] < 2:
        print("FAIL: expected >= 2 worker deaths")
        return 1
    if chaos["leases_expired"] < 1:
        print("FAIL: expected >= 1 expired lease")
        return 1
    if chaos["reassignments"] < 1:
        print("FAIL: expected >= 1 reassignment")
        return 1
    if chaos["mode"] != "fleet":
        print(f"FAIL: expected fleet mode, got {chaos['mode']!r}")
        return 1
    worst = _worst_relative_diff(baseline["values"], chaos["values"])
    print(f"worst relative difference vs baseline: {worst:.3e}", flush=True)
    if worst > TOLERANCE:
        print(f"FAIL: chaos values differ beyond {TOLERANCE}")
        return 1

    print("== 3. journal tear: strict refusal, then salvage ==", flush=True)
    intact = _tear_journal(chaos_dir)
    child = _spawn_child(chaos_dir, resume=True)
    if child.wait(timeout=600) != 3:
        print("FAIL: strict --resume accepted a torn journal")
        return 1
    child = _spawn_child(chaos_dir, resume=True, salvage=True)
    if child.wait(timeout=600) != 0:
        print("FAIL: salvage resume did not exit cleanly")
        return 1
    salvaged = _load_values(chaos_dir)
    if salvaged["resumed"] != intact:
        print(
            f"FAIL: salvage restored {salvaged['resumed']} task(s), "
            f"expected {intact}"
        )
        return 1
    worst = _worst_relative_diff(baseline["values"], salvaged["values"])
    print(
        f"salvage restored {intact}/{salvaged['n_tasks']} task(s); "
        f"worst relative difference: {worst:.3e}",
        flush=True,
    )
    if worst > TOLERANCE:
        print(f"FAIL: salvaged values differ beyond {TOLERANCE}")
        return 1

    print("PASS: fleet survives chaos with bit-identical results")
    return 0


# ----------------------------------------------------------------------

def main(argv) -> int:
    if argv and argv[0] == "child":
        parser = argparse.ArgumentParser(prog="chaos_fleet_check child")
        parser.add_argument("run_dir")
        parser.add_argument("--fleet", default=None)
        parser.add_argument("--fleet-wait", type=float, default=20.0)
        parser.add_argument("--resume", action="store_true")
        parser.add_argument("--salvage", action="store_true")
        return run_child(parser.parse_args(argv[1:]))
    if argv and argv[0] == "worker":
        parser = argparse.ArgumentParser(prog="chaos_fleet_check worker")
        parser.add_argument("address")
        parser.add_argument("--worker-id", default=None)
        parser.add_argument("--patience", type=float, default=10.0)
        return run_fleet_worker(parser.parse_args(argv[1:]))
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("work_dir", nargs="?", default=None)
    parser.add_argument("--seed", type=int, default=SEED)
    args = parser.parse_args(argv)
    if args.work_dir:
        work_dir = pathlib.Path(args.work_dir)
        work_dir.mkdir(parents=True, exist_ok=True)
        return orchestrate(work_dir, args.seed)
    with tempfile.TemporaryDirectory(prefix="chaos-fleet-") as tmp:
        return orchestrate(pathlib.Path(tmp), args.seed)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
