#!/usr/bin/env python
"""Prove tracing stays within its overhead budget on the smoke sweep.

Runs the bench-smoke imbalance sweep (Fig. 6 shape: four 8-layer
stacked topologies x 11 imbalance points, grid ``REPRO_BENCH_GRID`` or
10) several rounds each way:

* tracing **off** — the production default;
* tracing **on** — spans down to the solver rungs, flushed to a
  ``trace-<fp>.jsonl`` each round (flushing is part of enabled mode, so
  it is measured, not excluded).

Rounds are interleaved off/on (order alternating within each pair) and
the overhead estimate is the **trimmed mean of the paired per-round
deltas** over the median untraced wall — pairing cancels the clock
drift and cache effects that dwarf the actual tracing cost.  The gate
is statistical: the check fails only when the *lower 95% confidence
bound* of that estimate reaches ``REPRO_OBS_MAX_OVERHEAD`` (default
3%) of the sweep wall, so shared-runner scheduler noise cannot flake
the job while a real regression still fails every time.  The traced
values must also be bit-identical to the untraced ones, and the flushed
trace must convert to Chrome ``trace_event`` JSON with the documented
keys.  Results land in ``BENCH_obs_overhead.json`` (schema v4 payload
plus the overhead measurement) for the dashboard.

Usage::

    python scripts/obs_overhead_check.py [output_dir]

Exit 0 = budget holds; 1 = regression (with a one-line diagnostic).
"""

from __future__ import annotations

import gc
import os
import pathlib
import statistics
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.obs.export import chrome_trace_events, load_trace, trace_path  # noqa: E402
from repro.obs.trace import get_tracer  # noqa: E402
from repro.runtime import PDNSpec, SweepEngine, SweepPoint  # noqa: E402
from repro.runtime.metrics import write_bench_json  # noqa: E402
from repro.workload.imbalance import interleaved_layer_activities  # noqa: E402

GRID = int(os.environ.get("REPRO_BENCH_GRID", "10"))
MAX_OVERHEAD = float(os.environ.get("REPRO_OBS_MAX_OVERHEAD", "0.03"))
ROUNDS = int(os.environ.get("REPRO_OBS_ROUNDS", "15"))
N_LAYERS = 8

CHROME_EVENT_KEYS = ("name", "cat", "ph", "ts", "dur", "pid", "tid", "args")


def _points():
    # Many distinct topology groups: the sweep wall is dominated by the
    # per-group build + factorize, so this is what buys enough work
    # (>0.5 s/round at grid 10) for fixed millisecond-scale scheduler
    # noise to amortise below the 3% budget being measured.
    imbalances = tuple(round(0.1 * i, 1) for i in range(11))
    return [
        SweepPoint(
            spec=PDNSpec.stacked(
                n_layers, converters_per_core=cpc, grid_nodes=GRID
            ),
            layer_activities=tuple(
                interleaved_layer_activities(n_layers, imbalance)
            ),
        )
        for n_layers in (4, 6, 8, 10, 12, 14)
        for cpc in (2, 4, 6, 8)
        for imbalance in imbalances
    ]


def _ir_extract(outcome):
    return outcome.unwrap().max_ir_drop_fraction()


def _one_round(points):
    """One cold-engine sweep; returns (wall_s, values, metrics)."""
    t0 = time.perf_counter()
    run = SweepEngine().run(points, extract=_ir_extract)
    return time.perf_counter() - t0, run.values, run.metrics


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    output_dir = pathlib.Path(argv[0]) if argv else REPO_ROOT / "benchmarks" / "output"
    points = _points()
    tracer = get_tracer()

    # Warm-up: exclude one-time costs (imports, BLAS init) from both arms.
    SweepEngine().run(points, extract=_ir_extract)

    # Interleave off/on rounds so clock drift and cache warm-up hit both
    # arms equally, and alternate which arm goes first within each pair
    # so "runs second in the pair" effects cancel too.  Each traced
    # round flushes into a fresh directory: one run = one trace; the
    # same-fingerprint merge path is a --resume cost, not steady state,
    # and must not be charged to enabled tracing N times over.  GC is
    # paused during measurement — a collection landing in one arm would
    # dwarf the effect being measured.
    off_walls, on_walls = [], []
    off_values = on_values = metrics = None
    round_dir = None
    with tempfile.TemporaryDirectory() as tmp:
        gc.collect()
        gc.disable()
        try:
            for round_index in range(ROUNDS):
                def run_off():
                    tracer.disable()
                    wall, values, _unused = _one_round(points)
                    off_walls.append(wall)
                    return values

                def run_on():
                    nonlocal_dir = os.path.join(tmp, f"round{round_index}")
                    os.makedirs(nonlocal_dir)
                    os.environ["REPRO_TRACE_DIR"] = nonlocal_dir
                    tracer.drain()
                    tracer.enable()
                    wall, values, run_metrics = _one_round(points)
                    on_walls.append(wall)
                    return values, run_metrics, nonlocal_dir

                if round_index % 2 == 0:
                    off_values = run_off()
                    on_values, metrics, round_dir = run_on()
                else:
                    on_values, metrics, round_dir = run_on()
                    off_values = run_off()
        finally:
            gc.enable()
            tracer.drain()
            tracer.disable()
            tracer.set_trace_id(None)
            os.environ.pop("REPRO_TRACE_DIR", None)
        off_wall = min(off_walls)
        on_wall = min(on_walls)
        # Trimmed mean of the paired deltas: drop the extreme pairs at
        # each end (scheduler spikes), average the rest.  Smoother than
        # a single median element, still outlier-immune.
        deltas = sorted(on - off for on, off in zip(on_walls, off_walls))
        trim = len(deltas) // 4
        kept = deltas[trim : len(deltas) - trim] or deltas
        median_delta = sum(kept) / len(kept)
        median_off = sorted(off_walls)[len(off_walls) // 2]
        if len(kept) >= 2:
            delta_stderr = statistics.stdev(kept) / len(kept) ** 0.5
        else:  # pragma: no cover - ROUNDS >= 2 in practice
            delta_stderr = 0.0

        if on_values != off_values:
            print("FAIL: traced sweep values diverged from untraced run")
            return 1

        trace_file = trace_path(metrics.run_fingerprint, round_dir)
        if not trace_file.exists():
            print(f"FAIL: no trace flushed at {trace_file}")
            return 1
        spans = load_trace(trace_file)
        events = chrome_trace_events(spans)
        if not events:
            print("FAIL: Chrome trace conversion produced no events")
            return 1
        for key in CHROME_EVENT_KEYS:
            if key not in events[0]:
                print(f"FAIL: Chrome trace event missing key {key!r}")
                return 1

    overhead = median_delta / median_off
    # A shared CI box carries percent-scale scheduler noise that no
    # amount of pairing fully cancels, so the gate is statistical: fail
    # only when the overhead is *significantly* over budget — when even
    # the lower 95% confidence bound of the paired-delta estimate
    # clears it.  A true regression (2x the budget, say) still fails
    # every time; a noise spike on a sub-1% true cost does not.
    overhead_low = (median_delta - 2.0 * delta_stderr) / median_off
    payload = {
        "benchmark": "obs_overhead",
        "grid_nodes": GRID,
        "n_layers": N_LAYERS,
        "n_points": len(points),
        "rounds": ROUNDS,
        "tracing_off_s": round(off_wall, 6),
        "tracing_on_s": round(on_wall, 6),
        "tracing_off_walls_s": [round(w, 6) for w in off_walls],
        "tracing_on_walls_s": [round(w, 6) for w in on_walls],
        "median_paired_delta_s": round(median_delta, 6),
        "paired_delta_stderr_s": round(delta_stderr, 6),
        "overhead_fraction": round(overhead, 6),
        "overhead_lower_bound_fraction": round(overhead_low, 6),
        "max_overhead_fraction": MAX_OVERHEAD,
        "n_spans": len(spans),
        "values_bit_identical": True,
        "engine": metrics.to_json(),
    }
    write_bench_json("obs_overhead", payload, directory=output_dir)
    print(
        f"obs overhead: median wall {median_off:.3f}s, traced delta "
        f"{median_delta * 1000:+.2f}ms +- {delta_stderr * 1000:.2f}ms "
        f"({overhead:+.2%}, budget {MAX_OVERHEAD:.0%}), "
        f"{len(spans)} spans, grid {GRID}"
    )
    if overhead_low >= MAX_OVERHEAD:
        print(
            f"FAIL: enabled tracing costs {overhead:.2%} "
            f"(lower bound {overhead_low:.2%}) >= "
            f"{MAX_OVERHEAD:.0%} of sweep wall"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
