#!/usr/bin/env python
"""Benchmark every registered solver backend on the bench-smoke systems.

Two stages, because the backends target different matrix structures:

``pdn``
    The bench-smoke stacked PDN (grid ``REPRO_BENCH_GRID`` or 10,
    4 layers).  Its MNA matrix is a saddle point (voltage-source
    constraint rows) with anti-symmetric converter stamps — **never
    SPD** — so ``cholesky`` degrades to its in-rung ``lu`` fallback
    here by design; the stage exists to show the degradation is honest
    (same numbers as ``lu``, one structured-log notice) and to time
    ``iterative`` on the structure the experiments actually solve.
``spd`` / ``spd_large``
    The HotSpotLite thermal grid of the same stack — a pure conductance
    network, genuinely SPD — at the bench-smoke grid and at twice that
    (minimum 20).  This is where ``cholesky`` must earn its keep: the
    acceptance gate (``REPRO_CHOLESKY_MIN_SPEEDUP``, default 1.3)
    compares its factorize+solve wall against ``lu`` **on the large
    stage**.  Without scikit-sparse the backend runs SuperLU in
    symmetric mode (``MMD_AT_PLUS_A`` ordering, no partial pivoting),
    whose halved fill-in delivers ~2.1x at grid 20 and ~2.8x at grid 60
    on this machine; with CHOLMOD it is faster still.  At the smoke
    grid itself (dim ~400, sub-ms factorise) the ordering advantage is
    smaller than timer noise — measured honestly at ~0.9-1.2x — which
    is why the gate sits on the large stage, not the toy one.

Per backend and stage the best-of-``REPRO_BENCH_ROUNDS`` (default 5)
factorize wall, batched-solve wall (8 RHS), and max |x - x_lu| relative
difference are recorded to ``BENCH_solver_backends.json``.  A backend
whose optional native library is absent is still measured through its
documented fallback, with the fallback noted in the payload — nothing
is silently skipped.

Usage::

    python scripts/bench_backends.py [output_dir]

Exit 0 = every backend agrees with lu and cholesky clears the SPD
speedup gate; 1 = regression (one-line diagnostic on stderr).
"""

from __future__ import annotations

import gc
import os
import pathlib
import sys
import time

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.config.stackups import (  # noqa: E402
    PadAllocation,
    ProcessorSpec,
    StackConfig,
    few_tsv,
)
from repro.core.scenarios import build_stacked_pdn  # noqa: E402
from repro.grid.backends import (  # noqa: E402
    backend_availability,
    get_backend,
)
from repro.runtime.metrics import write_bench_json  # noqa: E402
from repro.thermal.grid3d import HotSpotLite  # noqa: E402

GRID = int(os.environ.get("REPRO_BENCH_GRID", "10"))
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "5"))
MIN_SPEEDUP = float(os.environ.get("REPRO_CHOLESKY_MIN_SPEEDUP", "1.3"))
N_LAYERS = 4
N_RHS = 8
AGREEMENT_RTOL = 1e-9


def _pdn_system():
    pdn = build_stacked_pdn(
        n_layers=N_LAYERS, converters_per_core=8, grid_nodes=GRID
    )
    asm = pdn.assembled()
    rhs = _stacked_rhs(asm, seed=7)
    return asm._matrix, rhs


def _thermal_system(grid: int):
    stack = StackConfig(
        n_layers=N_LAYERS,
        processor=ProcessorSpec(),
        tsv_topology=few_tsv(),
        pads=PadAllocation(power_fraction=0.25),
        grid_nodes=grid,
    )
    thermal = HotSpotLite(stack)
    thermal.solve()  # assembles (and exercises the production path once)
    asm = thermal._assembled
    return asm._matrix, _stacked_rhs(asm, seed=11)


def _stacked_rhs(asm, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal((asm.dimension, N_RHS))


def _time_backend(name: str, matrix, rhs):
    """Best-of-ROUNDS factorize and batched-solve walls for one backend."""
    backend = get_backend(name)
    factorize_s = []
    solve_s = []
    solution = None
    for _ in range(ROUNDS):
        gc.collect()
        t0 = time.perf_counter()
        fact = backend.factorize(matrix)
        t1 = time.perf_counter()
        x = fact.solve_batch(rhs)
        t2 = time.perf_counter()
        factorize_s.append(t1 - t0)
        solve_s.append(t2 - t1)
        solution = x
    return {
        "factorize_s": min(factorize_s),
        "solve_s": min(solve_s),
        "total_s": min(f + s for f, s in zip(factorize_s, solve_s)),
    }, solution


def _run_stage(stage: str, matrix, rhs, availability):
    """Measure every backend on one system; lu is the reference."""
    results = {}
    reference = None
    for name in ("lu", "cholesky", "iterative"):
        entry = dict(availability[name])
        try:
            timing, solution = _time_backend(name, matrix, rhs)
        except Exception as exc:  # honest skip: record why, keep going
            results[name] = {
                **entry,
                "status": f"skipped: {type(exc).__name__}: {exc}",
            }
            continue
        record = {**entry, "status": "ok", **{
            k: round(v, 6) for k, v in timing.items()
        }}
        if name == "lu":
            reference = solution
            record["speedup_vs_lu"] = 1.0
        elif reference is not None:
            scale = float(np.linalg.norm(reference))
            diff = float(np.linalg.norm(solution - reference))
            record["rel_diff_vs_lu"] = diff / scale if scale else 0.0
            lu_total = results["lu"]["total_s"]
            record["speedup_vs_lu"] = round(
                lu_total / timing["total_s"], 3
            ) if timing["total_s"] > 0 else None
        results[name] = record
    return {
        "dimension": int(matrix.shape[0]),
        "nnz": int(matrix.nnz),
        "spd": stage.startswith("spd"),
        "backends": results,
    }


def main() -> int:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else str(
        REPO_ROOT / "benchmarks" / "output"
    )
    availability = backend_availability()
    # A backend whose optional library is absent still runs through its
    # documented fallback (CHOLMOD-less cholesky -> SuperLU symmetric
    # mode) and is measured, not skipped.  cholesky on the pdn stage
    # raises NotSPDError by contract; the payload records that typed
    # refusal — in production the solver layer answers it with the
    # in-rung lu fallback, so the pdn/lu row *is* its cost there.
    pdn_matrix, pdn_rhs = _pdn_system()
    spd_matrix, spd_rhs = _thermal_system(GRID)
    large_grid = max(2 * GRID, 20)
    spd_large_matrix, spd_large_rhs = _thermal_system(large_grid)

    stages = {
        "spd": _run_stage("spd", spd_matrix, spd_rhs, availability),
        "spd_large": _run_stage(
            "spd_large", spd_large_matrix, spd_large_rhs, availability
        ),
        "pdn": _run_stage("pdn", pdn_matrix, pdn_rhs, availability),
    }
    stages["spd"]["grid"] = GRID
    stages["spd_large"]["grid"] = large_grid
    stages["pdn"]["grid"] = GRID

    failures = []
    spd = stages["spd_large"]["backends"]
    for name, record in [
        (n, r)
        for stage in stages.values()
        for n, r in stage["backends"].items()
    ]:
        rel = record.get("rel_diff_vs_lu")
        if rel is not None and rel > AGREEMENT_RTOL:
            failures.append(
                f"{name} disagrees with lu by {rel:.2e} (> {AGREEMENT_RTOL})"
            )
    cholesky = spd.get("cholesky", {})
    speedup = cholesky.get("speedup_vs_lu")
    if cholesky.get("status") == "ok":
        if speedup is None or speedup < MIN_SPEEDUP:
            failures.append(
                f"cholesky speedup {speedup} < gate {MIN_SPEEDUP} on the "
                f"spd_large stage (grid {large_grid})"
            )

    payload = {
        "grid": GRID,
        "n_layers": N_LAYERS,
        "n_rhs": N_RHS,
        "rounds": ROUNDS,
        "cholesky_native": bool(availability["cholesky"]["native"]),
        "min_speedup_gate": MIN_SPEEDUP,
        "stages": stages,
        "analysis": (
            "spd/spd_large: thermal conductance grids, where cholesky's "
            "symmetric ordering pays once the factorisation is big "
            "enough to dominate timer noise (the speedup gate sits on "
            "spd_large; at the sub-ms smoke grid the measured ratio is "
            "~1x and recorded honestly); pdn: saddle-point MNA system "
            "(never SPD), where cholesky refuses with a typed error and "
            "degrades to lu in production, and iterative runs "
            "preconditioned LGMRES"
        ),
    }
    path = write_bench_json("solver_backends", payload, out_dir)
    print(f"wrote {path}")
    for stage_name, stage in stages.items():
        for name, record in stage["backends"].items():
            if record.get("status") != "ok":
                print(f"  {stage_name}/{name}: {record.get('status')}")
                continue
            print(
                f"  {stage_name}/{name}: factorize {record['factorize_s']*1e3:.2f} ms, "
                f"solve {record['solve_s']*1e3:.2f} ms, "
                f"speedup vs lu {record.get('speedup_vs_lu')}"
            )
    if failures:
        print(f"bench_backends: FAIL: {'; '.join(failures)}", file=sys.stderr)
        return 1
    print("bench_backends: all backends agree with lu"
          + (f"; cholesky speedup gate {MIN_SPEEDUP}x holds"
             if cholesky.get("status") == "ok" else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
