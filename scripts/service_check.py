#!/usr/bin/env python
"""End-to-end robustness proof for the exploration service.

Boots a real ``repro serve`` subprocess (supervised, process-mode solve
pool) and drives it through the failure modes the service claims to
survive:

1. **Mixed burst** — concurrent duplicate queries (must coalesce to one
   solve and then hit the cache), novel specs (each solved once) and one
   poisoned spec (NaN activities -> a *typed* solve-error response, not
   a hung or dead server).  Cache hit/miss counts are asserted through
   the metrics endpoint, not inferred from timing.
2. **Worker kill** — a solver child process is SIGKILLed mid-request;
   the query must still come back answered (the supervisor rebuilds its
   pool and retries, or the breaker serves a degraded answer) and the
   server must stay healthy.
3. **Clean shutdown** — a drain-shutdown is requested while a query is
   in flight; the in-flight query must receive its full answer and the
   server process must exit 0.

Exit status 0 = all three proofs hold.

Usage::

    python scripts/service_check.py [work_dir] [--grid N] [--burst N]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

GRID_NODES = 16
KILL_GRID_NODES = 30
BURST_DUPLICATES = 6
NOVEL_LAYERS = (2, 3, 4)
DUPLICATE_LAYERS = 5


def log(message: str) -> None:
    print(f"[service-check] {message}", flush=True)


def fail(message: str) -> "None":
    print(f"[service-check] FAIL: {message}", file=sys.stderr, flush=True)
    sys.exit(1)


def spec_payload(n_layers: int, grid_nodes: int = GRID_NODES) -> dict:
    return {
        "arrangement": "regular",
        "n_layers": n_layers,
        "grid_nodes": grid_nodes,
    }


def start_server(work: pathlib.Path) -> subprocess.Popen:
    """Launch ``repro serve`` with a supervised process-mode solve pool."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--bind", "127.0.0.1:0",
            "--cache-dir", str(work / "cache"),
            "--max-queue", "32",
            "--breaker-threshold", "3",
            "--breaker-cooldown", "5",
            # Supervision: process pool (SIGKILL-able children) + retry.
            "--workers", "2",
            "--task-timeout", "120",
            "--max-retries", "2",
        ],
        env=env,
        stdout=(work / "server.log").open("w"),
        stderr=subprocess.STDOUT,
        cwd=str(REPO_ROOT),
    )
    return process


def wait_for_address(work: pathlib.Path, timeout_s: float = 30.0) -> str:
    discovery = work / "cache" / "service.json"
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if discovery.exists():
            try:
                return json.loads(discovery.read_text())["address"]
            except (json.JSONDecodeError, KeyError):
                pass  # torn read during atomic publish; retry
        time.sleep(0.1)
    fail(f"server never published {discovery}")


def one_query(address: str, spec: dict, activities=None, deadline_s=None):
    from repro.service.client import ServiceClient

    with ServiceClient(address, timeout_s=300.0) as client:
        return client.query(spec, activities=activities, deadline_s=deadline_s)


# ----------------------------------------------------------------------
# Proof 1: mixed burst
# ----------------------------------------------------------------------

def check_mixed_burst(address: str, burst: int) -> None:
    from repro.service.client import ServiceClient

    duplicate = spec_payload(DUPLICATE_LAYERS)
    poisoned_activities = [float("nan")] * DUPLICATE_LAYERS

    jobs = []
    with ThreadPoolExecutor(max_workers=burst + len(NOVEL_LAYERS) + 1) as pool:
        for _ in range(burst):
            jobs.append(("duplicate", pool.submit(one_query, address, duplicate)))
        for n_layers in NOVEL_LAYERS:
            jobs.append(
                ("novel", pool.submit(one_query, address, spec_payload(n_layers)))
            )
        jobs.append(
            (
                "poisoned",
                pool.submit(
                    one_query, address, dict(duplicate), poisoned_activities
                ),
            )
        )
        outcomes = [(label, job.result()) for label, job in jobs]

    duplicates = [r for label, r in outcomes if label == "duplicate"]
    novel = [r for label, r in outcomes if label == "novel"]
    poisoned = next(r for label, r in outcomes if label == "poisoned")

    if not all(r.get("status") == "ok" for r in duplicates):
        fail(f"duplicate queries failed: {duplicates}")
    if len({r["fingerprint"] for r in duplicates}) != 1:
        fail("duplicate queries got different fingerprints")
    shared = sum(
        bool(r.get("cached") or r.get("coalesced")) for r in duplicates
    )
    if shared < burst - 1:
        fail(
            f"expected >= {burst - 1} coalesced/cached duplicates, got {shared}"
        )
    if not all(r.get("status") == "ok" for r in novel):
        fail(f"novel queries failed: {novel}")
    if poisoned.get("status") != "solve-error" or poisoned.get("code") != 500:
        fail(f"poisoned spec should be a typed solve-error, got {poisoned}")
    log(
        f"burst ok: {burst} duplicates -> {shared} shared, "
        f"{len(novel)} novel solved, poisoned -> "
        f"{poisoned['error_type']} (typed 500)"
    )

    # A repeat after the burst must be a disk-cache hit, and the metrics
    # endpoint must agree about the hit/miss accounting.
    repeat = one_query(address, duplicate)
    if not repeat.get("cached"):
        fail(f"post-burst repeat was not a cache hit: {repeat}")
    with ServiceClient(address) as client:
        counters = client.metrics()["counters"]
    cache = counters["cache"]
    # Misses: the duplicate leader + each novel spec + poisoned + the
    # retried repeats of any coalesced-but-late queries (>= 5 for sure).
    expected_misses = 1 + len(NOVEL_LAYERS) + 1
    if cache["hits"] < 1:
        fail(f"metrics report no cache hits after a repeat: {cache}")
    if cache["misses"] < expected_misses:
        fail(f"expected >= {expected_misses} misses, metrics say {cache}")
    if counters["solves"].get("ok", 0) < 1 + len(NOVEL_LAYERS):
        fail(f"solve counter too low: {counters['solves']}")
    if counters["solves"].get("error", 0) < 1:
        fail(f"poisoned solve not counted: {counters['solves']}")
    log(
        f"metrics ok: hits={cache['hits']} misses={cache['misses']} "
        f"solves={counters['solves']}"
    )


# ----------------------------------------------------------------------
# Proof 2: SIGKILL a solver child mid-request
# ----------------------------------------------------------------------

def _child_pids(parent_pid: int) -> list:
    """PIDs whose direct parent is ``parent_pid`` (via /proc)."""
    children = []
    for entry in pathlib.Path("/proc").iterdir():
        if not entry.name.isdigit():
            continue
        try:
            stat = (entry / "stat").read_text()
            ppid = int(stat.rsplit(")", 1)[1].split()[1])
        except (OSError, IndexError, ValueError):
            continue
        if ppid == parent_pid:
            children.append(int(entry.name))
    return children


def check_worker_kill(address: str, server: subprocess.Popen) -> None:
    from repro.service.client import ServiceClient

    # A heavy novel spec keeps the solve pool busy long enough to kill.
    heavy = spec_payload(6, grid_nodes=KILL_GRID_NODES)
    with ThreadPoolExecutor(max_workers=1) as pool:
        inflight = pool.submit(one_query, address, heavy)
        # Wait for a pool child to appear under the server, then KILL it.
        killed = None
        deadline = time.monotonic() + 60.0
        while killed is None and time.monotonic() < deadline:
            if inflight.done():
                break  # solve finished before a child showed up
            for pid in _child_pids(server.pid):
                try:
                    os.kill(pid, signal.SIGKILL)
                    killed = pid
                    break
                except (ProcessLookupError, PermissionError):
                    continue
            time.sleep(0.02)
        response = inflight.result(timeout=300.0)

    if killed is None:
        log(
            "warning: no solver child observed to kill "
            "(solve finished first); answer path still verified"
        )
    else:
        log(f"SIGKILLed solver child {killed} mid-request")
    status = response.get("status")
    if not (status == "ok" or response.get("degraded")):
        fail(
            f"query after worker kill was neither answered nor degraded: "
            f"{response}"
        )
    with ServiceClient(address) as client:
        health = client.health()
    if health.get("status") != "ok":
        fail(f"server unhealthy after worker kill: {health}")
    if server.poll() is not None:
        fail("server process died after worker kill")
    log(
        f"worker-kill ok: query answered (status={status}, "
        f"degraded={bool(response.get('degraded'))}), server healthy"
    )


# ----------------------------------------------------------------------
# Proof 3: clean shutdown drains in-flight work
# ----------------------------------------------------------------------

def check_clean_shutdown(address: str, server: subprocess.Popen) -> None:
    from repro.service.client import ServiceClient

    heavy = spec_payload(7, grid_nodes=KILL_GRID_NODES)
    with ThreadPoolExecutor(max_workers=1) as pool:
        inflight = pool.submit(one_query, address, heavy)
        time.sleep(0.5)  # let it reach the solve pool
        with ServiceClient(address) as client:
            ack = client.shutdown(drain=True)
        if ack.get("status") != "draining":
            fail(f"shutdown not acknowledged as draining: {ack}")
        response = inflight.result(timeout=300.0)

    if response.get("status") != "ok":
        fail(f"in-flight query lost during drain shutdown: {response}")
    try:
        code = server.wait(timeout=60.0)
    except subprocess.TimeoutExpired:
        server.kill()
        fail("server did not exit after drain shutdown")
    if code != 0:
        fail(f"server exited {code} after drain shutdown")
    log("clean-shutdown ok: in-flight query answered, server exited 0")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "work_dir", nargs="?", default=None,
        help="working directory (default: a fresh temp dir)",
    )
    parser.add_argument(
        "--burst", type=int, default=BURST_DUPLICATES,
        help=f"duplicate queries in the burst (default {BURST_DUPLICATES})",
    )
    args = parser.parse_args(argv)

    work = pathlib.Path(
        args.work_dir or tempfile.mkdtemp(prefix="service-check-")
    )
    work.mkdir(parents=True, exist_ok=True)
    log(f"work dir: {work}")

    server = start_server(work)
    try:
        address = wait_for_address(work)
        log(f"server up at {address} (pid {server.pid})")
        check_mixed_burst(address, args.burst)
        check_worker_kill(address, server)
        check_clean_shutdown(address, server)
    finally:
        if server.poll() is None:
            server.terminate()
            try:
                server.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                server.kill()
    bench = work / "cache" / "BENCH_service.json"
    if not bench.exists():
        fail("server did not write BENCH_service.json at shutdown")
    payload = json.loads(bench.read_text())
    log(
        f"BENCH ok (schema {payload['schema']}): "
        f"{payload['service']['requests'].get('query', 0)} queries served"
    )
    log("all service proofs hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
