#!/usr/bin/env python
"""End-to-end crash/resume proof for the run supervisor.

Orchestrates three child processes:

1. an *uninterrupted* supervised sweep journaling into ``<dir>/clean``;
2. the same sweep into ``<dir>/crashed`` — SIGKILLed as soon as the
   journal shows at least one completed task but before it completes;
3. ``--resume`` of the crashed run, which must restore the journaled
   tasks bit-for-bit and re-run only the rest.

The resumed run's values must match the uninterrupted run's within
1e-12 (they are bit-identical in practice: restored values come out of
a pickle round-trip, re-run values out of the same deterministic
solver).  Exit status 0 = proof holds.

Usage::

    python scripts/resume_demo.py [work_dir]          # orchestrate
    python scripts/resume_demo.py child RUN_DIR       # internal
    python scripts/resume_demo.py child RUN_DIR --resume

The child sleeps briefly per point (REPRO_DEMO_DELAY_S, default 0.25)
so the orchestrator has a reliable window to deliver the SIGKILL.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

TOLERANCE = 1e-12
N_GROUPS = 6


def _demo_extract(outcome):
    """Deterministic per-point metrics, slowed for a kill window."""
    time.sleep(float(os.environ.get("REPRO_DEMO_DELAY_S", "0.25")))
    result = outcome.unwrap()
    return (result.max_ir_drop(), result.efficiency())


def run_child(run_dir: pathlib.Path, resume: bool) -> int:
    from repro.runtime import (
        PDNSpec,
        RunSupervisor,
        SupervisorConfig,
        SweepPoint,
    )

    points = []
    for n_layers in range(2, 2 + N_GROUPS):
        spec = PDNSpec.regular(n_layers, grid_nodes=10)
        points.append(SweepPoint(spec=spec))
        points.append(
            SweepPoint(spec=spec, layer_activities=(0.7,) + (1.0,) * (n_layers - 1))
        )
    supervisor = RunSupervisor(
        config=SupervisorConfig(
            run_dir=str(run_dir), resume=resume, verbose=True
        )
    )
    result = supervisor.run(points, extract=_demo_extract)
    payload = {
        "values": result.values,
        "resumed": result.metrics.resumed,
        "n_tasks": len(result.report.tasks),
        "quarantined": result.report.quarantined_fingerprints(),
    }
    (run_dir / "values.json").write_text(json.dumps(payload, indent=2))
    return 0


def _spawn(run_dir: pathlib.Path, resume: bool = False) -> subprocess.Popen:
    argv = [sys.executable, str(pathlib.Path(__file__).resolve()),
            "child", str(run_dir)]
    if resume:
        argv.append("--resume")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(argv, env=env)


def _journal_task_lines(run_dir: pathlib.Path) -> int:
    journals = list(run_dir.glob("journal-*.jsonl"))
    if not journals:
        return 0
    lines = journals[0].read_text().splitlines()
    return max(0, len(lines) - 1)  # minus the header


def orchestrate(work_dir: pathlib.Path) -> int:
    clean_dir = work_dir / "clean"
    crashed_dir = work_dir / "crashed"
    clean_dir.mkdir(parents=True, exist_ok=True)
    crashed_dir.mkdir(parents=True, exist_ok=True)

    print("== 1. uninterrupted run ==", flush=True)
    child = _spawn(clean_dir)
    if child.wait(timeout=600) != 0:
        print("FAIL: uninterrupted run did not exit cleanly")
        return 1
    clean = json.loads((clean_dir / "values.json").read_text())

    print("== 2. run to be SIGKILLed mid-sweep ==", flush=True)
    child = _spawn(crashed_dir)
    deadline = time.monotonic() + 600
    while time.monotonic() < deadline:
        done = _journal_task_lines(crashed_dir)
        if done >= 2:
            break
        if child.poll() is not None:
            print("FAIL: run finished before the kill could land; "
                  "raise REPRO_DEMO_DELAY_S")
            return 1
        time.sleep(0.05)
    os.kill(child.pid, signal.SIGKILL)
    child.wait(timeout=60)
    journaled = _journal_task_lines(crashed_dir)
    print(f"killed after {journaled} journaled task(s)", flush=True)
    if (crashed_dir / "values.json").exists():
        print("FAIL: the killed run still produced final values")
        return 1
    if journaled == 0 or journaled >= N_GROUPS:
        print("FAIL: kill landed outside the mid-run window")
        return 1

    print("== 3. resume the crashed run ==", flush=True)
    child = _spawn(crashed_dir, resume=True)
    if child.wait(timeout=600) != 0:
        print("FAIL: the resumed run did not exit cleanly")
        return 1
    resumed = json.loads((crashed_dir / "values.json").read_text())

    print("== 4. compare ==", flush=True)
    if resumed["resumed"] == 0:
        print("FAIL: the resumed run restored nothing from the journal")
        return 1
    if resumed["quarantined"] or clean["quarantined"]:
        print("FAIL: unexpected quarantined tasks")
        return 1
    if len(resumed["values"]) != len(clean["values"]):
        print("FAIL: value-count mismatch")
        return 1
    worst = 0.0
    for a, b in zip(clean["values"], resumed["values"]):
        for x, y in zip(a, b):
            scale = max(abs(x), abs(y), 1e-300)
            worst = max(worst, abs(x - y) / scale)
    print(f"restored {resumed['resumed']}/{resumed['n_tasks']} task(s); "
          f"worst relative difference: {worst:.3e}")
    if worst > TOLERANCE:
        print(f"FAIL: resumed values differ beyond {TOLERANCE}")
        return 1
    print("PASS: resumed outputs match the uninterrupted run")
    return 0


def main(argv) -> int:
    if argv and argv[0] == "child":
        run_dir = pathlib.Path(argv[1])
        run_dir.mkdir(parents=True, exist_ok=True)
        return run_child(run_dir, resume="--resume" in argv[2:])
    if argv:
        work_dir = pathlib.Path(argv[0])
        work_dir.mkdir(parents=True, exist_ok=True)
        return orchestrate(work_dir)
    with tempfile.TemporaryDirectory(prefix="resume-demo-") as tmp:
        return orchestrate(pathlib.Path(tmp))


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
