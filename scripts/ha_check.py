#!/usr/bin/env python
"""High-availability proof for the replicated exploration service.

Boots TWO real ``repro serve`` replica processes onto one shared cache
directory — replica A with a small fleet (one attached ``repro worker``
solving its misses), replica B plain — and drives the failure modes the
HA tier claims to survive:

1. **Kill mid-burst** — a query burst runs against the replicated
   service (addresses discovered from the shared ``service.json``);
   replica A is SIGKILLed partway through.  Every query must still be
   answered (clients fail over to replica B), and the shared cache must
   hold **zero torn entries** afterwards (``repro cache verify`` and an
   in-process sweep both agree).
2. **Bit identity** — every burst answer is re-derived with a direct
   in-process :class:`~repro.runtime.SweepEngine` run and compared
   field-by-field to 1e-12: replication, failover, fleet fan-out and
   the cache must never change the numbers.
3. **Epoch bump** — a third replica starts under a different code
   epoch (``REPRO_EPOCH`` override); a previously-cached query must
   re-solve (fresh answer, not served from the old generation), with
   the old entries reachable only through the degraded stale path.
4. **Torn entry** — one cache entry is truncated on disk; the next
   query of it must be re-solved and the corruption *counted* in the
   service metrics (``cache.corrupt``), never served.

Exit status 0 = all proofs hold.

Usage::

    python scripts/ha_check.py [work_dir] [--grid N]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

GRID_NODES = 12
BURST_LAYERS = (2, 3, 4, 5)
KILL_AFTER = 2  # queries answered before replica A is SIGKILLed
BUMPED_EPOCH = "ha-check-epoch-2"
TOLERANCE = 1e-12


def log(message: str) -> None:
    print(f"[ha-check] {message}", flush=True)


def fail(message: str) -> None:
    print(f"[ha-check] FAIL: {message}", file=sys.stderr, flush=True)
    sys.exit(1)


def _env(epoch: str = None) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    if epoch:
        env["REPRO_EPOCH"] = epoch
    return env


def start_replica(
    work: pathlib.Path,
    name: str,
    fleet: bool = False,
    epoch: str = None,
) -> subprocess.Popen:
    command = [
        sys.executable, "-m", "repro", "serve",
        "--bind", "127.0.0.1:0",
        "--cache-dir", str(work / "cache"),
        "--max-queue", "32",
    ]
    if fleet:
        command += ["--fleet", "127.0.0.1:0", "--fleet-wait", "5"]
    return subprocess.Popen(
        command,
        env=_env(epoch),
        stdout=(work / f"{name}.log").open("w"),
        stderr=subprocess.STDOUT,
        cwd=str(REPO_ROOT),
    )


def start_worker(work: pathlib.Path, fleet_address: str) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            fleet_address,
            "--worker-id", "ha-check-w1",
            "--patience", "10",
        ],
        env=_env(),
        stdout=(work / "worker.log").open("w"),
        stderr=subprocess.STDOUT,
        cwd=str(REPO_ROOT),
    )


def wait_for_replicas(
    work: pathlib.Path, pids: list, timeout_s: float = 60.0
) -> list:
    """Block until every pid in ``pids`` is registered; returns replicas."""
    from repro.service.replica import live_replicas

    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        replicas = live_replicas(work / "cache")
        if set(pids) <= {r.get("pid") for r in replicas}:
            return replicas
        time.sleep(0.1)
    fail(f"replicas {pids} never all registered in service.json")


def spec_payload(n_layers: int, grid_nodes: int = GRID_NODES) -> dict:
    return {
        "arrangement": "regular",
        "n_layers": n_layers,
        "grid_nodes": grid_nodes,
    }


# ----------------------------------------------------------------------
# Proof 1 + 2: kill a replica mid-burst; answers survive, bit-identical
# ----------------------------------------------------------------------

def check_kill_burst(work: pathlib.Path, replica_a: subprocess.Popen) -> dict:
    from repro.service.client import robust_query

    answers = {}
    for index, n_layers in enumerate(BURST_LAYERS):
        response = robust_query(
            spec_payload(n_layers),
            cache_dir=work / "cache",
            deadline_s=300.0,
            client_timeout_s=120.0,
            retries=2,
        )
        if response.get("status") != "ok":
            fail(f"burst query ({n_layers} layers) not answered: {response}")
        answers[n_layers] = response
        if index + 1 == KILL_AFTER:
            os.kill(replica_a.pid, signal.SIGKILL)
            replica_a.wait(timeout=10.0)
            log(f"SIGKILLed replica A (pid {replica_a.pid}) mid-burst")
    log(f"burst ok: {len(answers)}/{len(BURST_LAYERS)} queries answered "
        "across the kill")
    return answers


def check_bit_identity(answers: dict) -> None:
    from repro.runtime import SweepEngine, SweepPoint
    from repro.runtime.spec import PDNSpec
    from repro.service import extract_summary

    engine = SweepEngine()
    for n_layers, response in sorted(answers.items()):
        spec = PDNSpec.regular(n_layers, grid_nodes=GRID_NODES)
        direct = engine.run(
            [SweepPoint(spec=spec)], extract=extract_summary
        ).values[0]
        served = response["result"]
        if set(served) != set(direct):
            fail(
                f"{n_layers}-layer answer keys drifted: "
                f"{sorted(served)} vs {sorted(direct)}"
            )
        for key, expected in direct.items():
            got = served[key]
            if isinstance(expected, float):
                if abs(got - expected) > TOLERANCE:
                    fail(
                        f"{n_layers}-layer {key} drifted: served {got!r} "
                        f"vs direct {expected!r} (> {TOLERANCE})"
                    )
            elif got != expected:
                fail(f"{n_layers}-layer {key}: {got!r} != {expected!r}")
    log(f"bit-identity ok: {len(answers)} answers match direct "
        f"SweepEngine runs to {TOLERANCE}")


def check_cache_integrity(work: pathlib.Path) -> None:
    from repro.service.cache import ResultCache

    # The CLI path first (what an operator runs), then the same sweep
    # in-process so the numbers are assertable.
    code = subprocess.run(
        [
            sys.executable, "-m", "repro", "cache", "verify",
            "--cache-dir", str(work / "cache"),
        ],
        env=_env(),
        cwd=str(REPO_ROOT),
    ).returncode
    if code != 0:
        fail(f"'repro cache verify' exited {code}")
    report = ResultCache(work / "cache").open().verify()
    if report["evicted"] != 0:
        fail(f"torn cache entries after the kill: {report}")
    if report["ok"] != report["checked"] or report["checked"] == 0:
        fail(f"cache verify mismatch: {report}")
    log(
        f"cache integrity ok: {report['ok']}/{report['checked']} entries "
        f"clean, zero torn (epochs: {report['by_epoch']})"
    )


# ----------------------------------------------------------------------
# Proof 3: an epoch bump forces a re-solve
# ----------------------------------------------------------------------

def check_epoch_bump(
    work: pathlib.Path, replica_b: subprocess.Popen
) -> subprocess.Popen:
    from repro.service.client import robust_query

    # Rolling upgrade: retire the old-epoch replica, then start one
    # under a bumped epoch.  (While B lived it could legitimately keep
    # serving its own generation's entries as fresh.)
    replica_b.terminate()
    replica_b.wait(timeout=10.0)
    replica_c = start_replica(work, "replica-c", epoch=BUMPED_EPOCH)
    wait_for_replicas(work, [replica_c.pid])
    response = robust_query(
        spec_payload(BURST_LAYERS[0]),
        cache_dir=work / "cache",
        deadline_s=300.0,
        client_timeout_s=120.0,
    )
    if response.get("status") != "ok":
        fail(f"post-bump query not answered: {response}")
    if response.get("cached"):
        fail(
            "epoch bump did not force a re-solve: the old generation's "
            f"entry was served fresh: {response}"
        )
    log("epoch bump ok: cached query re-solved under the new epoch")
    return replica_c


# ----------------------------------------------------------------------
# Proof 4: a truncated entry is evicted and counted, never served
# ----------------------------------------------------------------------

def check_torn_entry(work: pathlib.Path) -> None:
    from repro.service.client import ServiceClient, robust_query

    fingerprint = None
    probe = robust_query(
        spec_payload(BURST_LAYERS[1]),
        cache_dir=work / "cache",
        deadline_s=300.0,
        client_timeout_s=120.0,
    )
    fingerprint = probe.get("fingerprint")
    path = work / "cache" / f"result-{fingerprint}.json"
    if not path.exists():
        fail(f"no cache entry at {path} to truncate")
    text = path.read_text()
    path.write_text(text[: len(text) // 2])
    response = robust_query(
        spec_payload(BURST_LAYERS[1]),
        cache_dir=work / "cache",
        deadline_s=300.0,
        client_timeout_s=120.0,
    )
    if response.get("status") != "ok" or response.get("cached"):
        fail(f"torn entry was not transparently re-solved: {response}")
    from repro.service.replica import live_replicas

    address = live_replicas(work / "cache")[0]["address"]
    with ServiceClient(address) as client:
        corrupt = client.metrics()["counters"]["cache"]["corrupt"]
    if corrupt < 1:
        fail(f"torn entry was not counted as corrupt: {corrupt}")
    log(f"torn-entry ok: re-solved and counted (corrupt={corrupt})")


def main(argv=None) -> int:
    global GRID_NODES
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "work_dir", nargs="?", default=None,
        help="working directory (default: a fresh temp dir)",
    )
    parser.add_argument(
        "--grid", type=int, default=GRID_NODES,
        help=f"query grid resolution (default {GRID_NODES})",
    )
    args = parser.parse_args(argv)
    GRID_NODES = args.grid

    work = pathlib.Path(args.work_dir or tempfile.mkdtemp(prefix="ha-check-"))
    work.mkdir(parents=True, exist_ok=True)
    log(f"work dir: {work}")

    replica_a = start_replica(work, "replica-a", fleet=True)
    replica_b = start_replica(work, "replica-b")
    worker = None
    replica_c = None
    try:
        replicas = wait_for_replicas(work, [replica_a.pid, replica_b.pid])
        log(f"{len(replicas)} replicas registered: "
            + ", ".join(f"{r['id']}@{r['address']}" for r in replicas))
        fleet_address = next(
            (r.get("fleet") for r in replicas if r.get("fleet")), None
        )
        if fleet_address is None:
            fail("replica A did not publish its fleet address")
        worker = start_worker(work, fleet_address)
        log(f"fleet worker attached to {fleet_address}")

        answers = check_kill_burst(work, replica_a)
        check_bit_identity(answers)
        check_cache_integrity(work)
        replica_c = check_epoch_bump(work, replica_b)
        check_torn_entry(work)
    finally:
        for process in (worker, replica_a, replica_b, replica_c):
            if process is not None and process.poll() is None:
                process.terminate()
                try:
                    process.wait(timeout=10.0)
                except subprocess.TimeoutExpired:
                    process.kill()
    log("all HA proofs hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
