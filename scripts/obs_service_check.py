#!/usr/bin/env python
"""End-to-end proof of the service tier's observability claims.

Boots a *traced* ``repro serve`` replica with an attached fleet
coordinator, a ``repro worker`` joined to it, and a second (untraced)
replica sharing the same cache directory, then asserts the three
claims docs/OBSERVABILITY.md makes about the distributed pipeline:

1. **One connected span tree** — a traced client query dispatched
   through the fleet yields, after stitching the client's spans with
   the replica's flushed ``trace-<replica>.jsonl``, a single tree
   rooted at the client hop that crosses the TCP boundary and reaches
   the fleet worker's solver spans (``fleet.task``/``group``/``rung``),
   with consistent parent ids and at least two distinct pids.
2. **Typed telemetry + fleet aggregation** — every replica's
   ``/metrics`` exposes the latency histogram buckets, and ``repro
   dash``'s merged registry reproduces the per-replica sums exactly.
3. **Tracing is free-of-charge on answers and cheap on latency** —
   trace-on and trace-off answers for the same spec are bit-identical,
   and the paired traced/untraced overhead on the cached query path
   stays under the same budget ``scripts/obs_overhead_check.py``
   enforces for the engine (default 3%, ``REPRO_OBS_MAX_OVERHEAD``).

Exit status 0 = all three proofs hold.

Usage::

    python scripts/obs_service_check.py [work_dir]
"""

from __future__ import annotations

import json
import os
import pathlib
import statistics
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.core.experiments.traceview import (  # noqa: E402
    count_tcp_hops,
    find_trace_files,
    stitch_traces,
)
from repro.obs.export import flush_spans  # noqa: E402
from repro.obs.trace import get_tracer  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.dash import (  # noqa: E402
    fleet_summary,
    merge_scrapes,
    render_dashboard,
    scrape_fleet,
)

GRID_NODES = int(os.environ.get("REPRO_BENCH_GRID", "16"))
MAX_OVERHEAD = float(os.environ.get("REPRO_OBS_MAX_OVERHEAD", "0.03"))
PAIRS = int(os.environ.get("REPRO_OBS_SERVICE_PAIRS", "40"))

#: Span names the connected tree must contain, client through solver.
REQUIRED_SPANS = (
    "service.client",
    "service.request",
    "service.fleet",
    "fleet.task",
    "group",
    "rung",
)


def log(message: str) -> None:
    print(f"[obs-service-check] {message}", flush=True)


def fail(message: str) -> None:
    print(f"[obs-service-check] FAIL: {message}", file=sys.stderr, flush=True)
    sys.exit(1)


def spec_payload(n_layers: int) -> dict:
    return {
        "arrangement": "regular",
        "n_layers": n_layers,
        "grid_nodes": GRID_NODES,
    }


# ----------------------------------------------------------------------
# process plumbing
# ----------------------------------------------------------------------

def _env(traced: bool, trace_dir: pathlib.Path) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    if traced:
        env["REPRO_TRACE"] = "1"
        env["REPRO_TRACE_DIR"] = str(trace_dir)
    else:
        env.pop("REPRO_TRACE", None)
        env.pop("REPRO_TRACE_DIR", None)
    return env


def start_replica(
    work: pathlib.Path,
    name: str,
    traced: bool,
    fleet: bool,
) -> subprocess.Popen:
    command = [
        sys.executable, "-m", "repro", "serve",
        "--bind", "127.0.0.1:0",
        "--cache-dir", str(work / "cache"),
        "--replica-id", name,
    ]
    if fleet:
        command += ["--fleet", "127.0.0.1:0"]
    return subprocess.Popen(
        command,
        env=_env(traced, work / "traces"),
        stdout=(work / f"{name}.log").open("w"),
        stderr=subprocess.STDOUT,
        cwd=str(REPO_ROOT),
    )


def start_worker(work: pathlib.Path, fleet_address: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", fleet_address],
        env=_env(True, work / "traces"),
        stdout=(work / "worker.log").open("w"),
        stderr=subprocess.STDOUT,
        cwd=str(REPO_ROOT),
    )


def wait_for_replicas(
    work: pathlib.Path, count: int, timeout_s: float = 45.0
) -> dict:
    """Replica-id -> entry once ``count`` replicas have registered."""
    discovery = work / "cache" / "service.json"
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if discovery.exists():
            try:
                record = json.loads(discovery.read_text())
            except json.JSONDecodeError:
                record = None  # torn read during atomic publish; retry
            if record:
                replicas = {
                    r["id"]: r
                    for r in record.get("replicas") or []
                    if isinstance(r, dict) and r.get("address")
                }
                if len(replicas) >= count:
                    return replicas
        time.sleep(0.1)
    fail(f"{count} replica(s) never registered in {discovery}")


def one_query(address: str, spec: dict) -> dict:
    with ServiceClient(address, timeout_s=300.0) as client:
        return client.query(spec)


# ----------------------------------------------------------------------
# Proof 1: one connected span tree across client/replica/fleet worker
# ----------------------------------------------------------------------

def check_span_tree(work: pathlib.Path) -> None:
    spans, report = stitch_traces(find_trace_files(work / "traces"))
    if not spans:
        fail(f"no spans in {work / 'traces'}")
    log("stitched: " + "; ".join(report))

    by_name = {}
    for span in spans:
        by_name.setdefault(span.name, []).append(span)
    missing = [name for name in REQUIRED_SPANS if name not in by_name]
    if missing:
        fail(f"span tree is missing {missing}; have {sorted(by_name)}")

    # Walk down from the client hop: everything the query touched must
    # be reachable through consistent parent ids.
    client = by_name["service.client"][0]
    children: dict = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    reachable = {}
    stack = [client.span_id]
    while stack:
        span_id = stack.pop()
        for child in children.get(span_id, []):
            if child.span_id not in reachable:
                reachable[child.span_id] = child
                stack.append(child.span_id)
    reachable[client.span_id] = client
    names = {span.name for span in reachable.values()}
    unreachable = [name for name in REQUIRED_SPANS if name not in names]
    if unreachable:
        fail(
            f"spans {unreachable} exist but are not reachable from the "
            "client hop: broken parent ids"
        )
    trace_ids = {
        span.trace_id for span in reachable.values() if span.trace_id
    }
    if len(trace_ids) != 1:
        fail(f"connected tree spans {len(trace_ids)} trace ids: {trace_ids}")
    pids = {span.pid for span in reachable.values()}
    if len(pids) < 2:
        fail(f"tree never crossed a process boundary (pids {pids})")
    hops = count_tcp_hops(spans)
    if hops < 1:
        fail("no labelled client->replica TCP hop in the stitched trace")
    log(
        f"span tree ok: {len(reachable)} connected spans, "
        f"{len(pids)} processes, {hops} tcp hop(s), trace {trace_ids.pop()}"
    )


# ----------------------------------------------------------------------
# Proof 2: histograms exposed + dash aggregation matches per-replica sums
# ----------------------------------------------------------------------

def check_metrics_and_dash(work: pathlib.Path, addresses: list) -> None:
    for address in addresses:
        with ServiceClient(address) as client:
            text = client.metrics()["prometheus"]
        if "repro_service_query_latency_seconds_bucket" not in text:
            fail(f"{address} /metrics lacks latency histogram buckets")
        if 'repro_service_replica_total{event="claims"}' not in text:
            fail(f"{address} /metrics lacks the flights claims counter")

    scrapes = scrape_fleet(work / "cache")
    live = [s for s in scrapes if s.ok]
    if len(live) < 2:
        fail(f"dash scraped {len(live)} live replicas, wanted >= 2")
    merged = merge_scrapes(scrapes)
    summary = fleet_summary(merged)
    expected_queries = sum(
        s.counters["requests"].get("query", 0) for s in live
    )
    if summary["queries"] != expected_queries:
        fail(
            f"merged query total {summary['queries']} != per-replica "
            f"sum {expected_queries}"
        )
    expected_latency = sum(s.counters["latency"]["count"] for s in live)
    if summary["latency_count"] != expected_latency:
        fail(
            f"merged latency count {summary['latency_count']} != "
            f"per-replica sum {expected_latency}"
        )
    if summary["latency_count"] and summary["p95_s"] is None:
        fail("merged histogram produced no p95 despite observations")
    table = render_dashboard(scrapes, merged)
    if f"fleet: {len(live)}/{len(scrapes)} replicas" not in table:
        fail(f"dash table lacks the fleet summary line:\n{table}")
    log(
        f"dash ok: {len(live)} replicas, fleet queries={summary['queries']} "
        f"latency n={summary['latency_count']} p95={summary['p95_s']}"
    )


# ----------------------------------------------------------------------
# Proof 3: bit-identical answers + overhead budget on the cached path
# ----------------------------------------------------------------------

def check_identity_and_overhead(work: pathlib.Path, address: str) -> None:
    tracer = get_tracer()
    spec = spec_payload(6)

    tracer.disable()
    untraced = one_query(address, spec)  # miss: solved through the fleet
    tracer.enable()
    traced = one_query(address, spec)
    tracer.disable()
    if untraced.get("status") != "ok" or traced.get("status") != "ok":
        fail(f"identity queries failed: {untraced} / {traced}")
    if traced["result"] != untraced["result"]:
        fail(
            "trace-on answer differs from trace-off answer:\n"
            f"  on : {traced['result']}\n  off: {untraced['result']}"
        )
    log("identity ok: traced and untraced answers bit-identical")

    # Paired traced/untraced cached queries; the trimmed mean of the
    # per-pair deltas over the median untraced wall is the overhead
    # (same estimator as scripts/obs_overhead_check.py, same budget).
    deltas, off_walls = [], []
    for _ in range(PAIRS):
        tracer.disable()
        start = time.perf_counter()
        one_query(address, spec)
        off = time.perf_counter() - start
        tracer.enable()
        start = time.perf_counter()
        one_query(address, spec)
        on = time.perf_counter() - start
        tracer.disable()
        tracer.drain()
        off_walls.append(off)
        deltas.append(on - off)
    trim = max(1, len(deltas) // 10)
    kept = sorted(deltas)[trim:-trim] or sorted(deltas)
    mean_delta = sum(kept) / len(kept)
    median_off = sorted(off_walls)[len(off_walls) // 2]
    stderr = (
        statistics.stdev(kept) / (len(kept) ** 0.5) if len(kept) > 1 else 0.0
    )
    overhead = mean_delta / median_off
    overhead_low = (mean_delta - 2.0 * stderr) / median_off
    log(
        f"overhead: median cached wall {median_off * 1000:.2f}ms, "
        f"traced delta {mean_delta * 1e6:+.0f}us +- {stderr * 1e6:.0f}us "
        f"({overhead:+.2%}, budget {MAX_OVERHEAD:.0%})"
    )
    if overhead_low >= MAX_OVERHEAD:
        fail(
            f"service-path tracing costs {overhead:.2%} "
            f"(lower bound {overhead_low:.2%}) >= {MAX_OVERHEAD:.0%}"
        )


# ----------------------------------------------------------------------

def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv:
        work = pathlib.Path(argv[0]).resolve()
        work.mkdir(parents=True, exist_ok=True)
    else:
        work = pathlib.Path(tempfile.mkdtemp(prefix="obs-service-check-"))
    (work / "traces").mkdir(exist_ok=True)
    log(f"work dir: {work}")

    processes = []
    try:
        processes.append(start_replica(work, "traced-a", True, fleet=True))
        replicas = wait_for_replicas(work, 1)
        fleet_address = replicas["traced-a"].get("fleet")
        if not fleet_address:
            fail("traced replica published no fleet address")
        processes.append(start_worker(work, fleet_address))
        processes.append(
            start_replica(work, "plain-b", False, fleet=False)
        )
        replicas = wait_for_replicas(work, 2)
        address_a = replicas["traced-a"]["address"]
        address_b = replicas["plain-b"]["address"]
        log(f"replicas up: traced-a={address_a} plain-b={address_b}")
        time.sleep(1.0)  # let the worker finish joining the fleet

        tracer = get_tracer()
        tracer.drain()
        tracer.enable()
        response = one_query(address_a, spec_payload(4))
        tracer.disable()
        if response.get("status") != "ok":
            fail(f"traced fleet query failed: {response}")
        client_spans = tracer.drain()
        flush_spans(client_spans, "client", trace_dir=work / "traces")

        # Exercise replica B untraced so dash has two live datasets.
        plain = one_query(address_b, spec_payload(5))
        if plain.get("status") != "ok":
            fail(f"untraced query failed: {plain}")

        check_identity_and_overhead(work, address_a)
        check_metrics_and_dash(work, [address_a, address_b])

        # Drain-stop the traced replica so its final trace flush lands,
        # then stitch its file with the client's.
        with ServiceClient(address_a) as client:
            client.shutdown(drain=True)
        deadline = time.monotonic() + 30.0
        while processes[0].poll() is None and time.monotonic() < deadline:
            time.sleep(0.2)
        if processes[0].poll() is None:
            fail("traced replica did not exit after drain shutdown")
        check_span_tree(work)
    finally:
        for process in processes:
            if process.poll() is None:
                process.terminate()
        for process in processes:
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()

    log("all observability proofs hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
