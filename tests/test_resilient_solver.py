"""Resilient solve path: island pruning, load shedding, diagnostics.

Property-based: whatever random subset of a grid's edges fails open, a
resilient solve must either return a finite solution with diagnostics or
raise a typed :class:`repro.errors.ReproError` — never an unhandled
SciPy exception and never non-finite voltages.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError, SingularCircuitError
from repro.faults import severed_layer_plan
from repro.grid.netlist import RESISTOR, Circuit
from repro.pdn.regular3d import RegularPDN3D
from repro.pdn.stacked3d import StackedPDN3D

from tests.conftest import TEST_GRID


def grid_circuit(n: int, load: float = 0.1) -> Circuit:
    """An n x n resistor mesh fed at one corner, loaded at every node."""
    c = Circuit()
    c.set_ground("gnd")
    c.add_voltage_source("supply", "gnd", 1.0, tag="vs")
    c.add_resistor("supply", (0, 0), 0.05, tag="feed")
    n1, n2 = [], []
    for j in range(n):
        for i in range(n):
            if i + 1 < n:
                n1.append((j, i)); n2.append((j, i + 1))
            if j + 1 < n:
                n1.append((j, i)); n2.append((j + 1, i))
    c.add_resistors(n1, n2, np.full(len(n1), 1.0), tag="mesh")
    nodes = [(j, i) for j in range(n) for i in range(n)]
    c.add_current_sources(
        nodes, ["gnd"] * len(nodes), np.full(len(nodes), load), tag="loads"
    )
    return c


class TestRandomizedDamage:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=3, max_value=6),
        damage=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_never_nonfinite_never_untyped(self, n, damage, seed):
        c = grid_circuit(n)
        store = c.store(RESISTOR)
        mesh = store.tag_indices("mesh")
        rng = np.random.default_rng(seed)
        kill = mesh[rng.random(mesh.size) < damage]
        if kill.size:
            c.open_elements(RESISTOR, kill)
        try:
            sol = c.assemble().solve(resilient=True)
        except ReproError:
            return  # typed failure is an acceptable outcome
        assert np.isfinite(sol.node_voltage).all()
        diag = sol.diagnostics
        assert diag is not None
        assert diag.residual <= 1e-6 or diag.fallback != "none"
        # Shed loads are reported as zero current, keeping KCL honest.
        assert np.isfinite(sol.isource_values()).all()

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_pruning_matches_reference_on_live_nodes(self, seed):
        # Cut the mesh into a known two-halves split: the dead half must
        # be grounded, the live half must match a circuit built without
        # the dead half at all.
        n = 4
        c = grid_circuit(n)
        store = c.store(RESISTOR)
        mesh = store.tag_indices("mesh")
        n1 = store.column("n1")[mesh]
        n2 = store.column("n2")[mesh]
        # Node ids for row coordinates: cut every edge crossing rows 1|2.
        row1 = {c.node((1, i)) for i in range(n)}
        row2 = {c.node((2, i)) for i in range(n)}
        crossing = mesh[
            [(a in row1 and b in row2) or (a in row2 and b in row1)
             for a, b in zip(n1, n2)]
        ]
        c.open_elements(RESISTOR, crossing)
        sol = c.assemble().solve(resilient=True)
        assert sol.diagnostics.n_islands == 1
        # Dead half (rows 2..3) grounded to exactly 0.
        for j in (2, 3):
            for i in range(n):
                assert sol.voltage((j, i)) == 0.0
        # Live half matches a half-sized reference mesh.
        ref = grid_circuit_half(n, seed)
        ref_sol = ref.solve()
        for j in (0, 1):
            for i in range(n):
                assert sol.voltage((j, i)) == pytest.approx(
                    ref_sol.voltage((j, i)), abs=1e-9
                )


def grid_circuit_half(n: int, _seed: int, load: float = 0.1) -> Circuit:
    """The live upper half (rows 0..1) of the cut mesh, built directly."""
    c = Circuit()
    c.set_ground("gnd")
    c.add_voltage_source("supply", "gnd", 1.0, tag="vs")
    c.add_resistor("supply", (0, 0), 0.05, tag="feed")
    n1, n2 = [], []
    for j in range(2):
        for i in range(n):
            if i + 1 < n:
                n1.append((j, i)); n2.append((j, i + 1))
            if j + 1 < 2:
                n1.append((j, i)); n2.append((j + 1, i))
    c.add_resistors(n1, n2, np.full(len(n1), 1.0), tag="mesh")
    nodes = [(j, i) for j in range(2) for i in range(n)]
    c.add_current_sources(
        nodes, ["gnd"] * len(nodes), np.full(len(nodes), load), tag="loads"
    )
    return c


class TestStrictVsResilient:
    def test_strict_still_raises_on_island(self):
        c = grid_circuit(3)
        store = c.store(RESISTOR)
        mesh = store.tag_indices("mesh")
        c.open_elements(RESISTOR, mesh)  # every node but the fed corner floats
        with pytest.raises(SingularCircuitError):
            c.assemble().solve()

    def test_resilient_prunes_same_circuit(self):
        c = grid_circuit(3)
        store = c.store(RESISTOR)
        mesh = store.tag_indices("mesh")
        c.open_elements(RESISTOR, mesh)
        sol = c.assemble().solve(resilient=True)
        diag = sol.diagnostics
        assert diag.n_islands >= 1
        assert diag.n_dropped_nodes == 8  # all but the fed corner
        assert diag.shed_loads == 8
        assert diag.degraded
        assert "island" in diag.summary()

    def test_clean_circuit_resilient_matches_strict(self):
        strict = grid_circuit(4).solve()
        resilient = grid_circuit(4).assemble().solve(resilient=True)
        assert resilient.diagnostics.n_islands == 0
        assert not resilient.diagnostics.degraded
        np.testing.assert_allclose(
            resilient.node_voltage, strict.node_voltage, atol=1e-9
        )
        assert resilient.diagnostics.condition_estimate is not None


class TestSeveredLayerRegression:
    """A fully-severed layer in a 4-layer stack must be detected as a
    floating island and pruned — for both PDN arrangements."""

    def test_regular_pdn_detects_island(self, stack_4l):
        pdn = RegularPDN3D(stack_4l)
        pdn.apply_faults(severed_layer_plan(pdn))  # top layer
        result = pdn.solve()
        diag = result.diagnostics
        assert diag is not None
        assert diag.n_islands >= 1
        # Both meshes of the severed layer are dropped and its loads shed.
        assert diag.n_dropped_nodes == 2 * TEST_GRID**2
        assert diag.shed_loads == TEST_GRID**2
        for layer in range(stack_4l.n_layers):
            assert np.isfinite(result.ir_drop_map(layer)).all()
        # The surviving layers still see a sane supply.
        assert result.max_ir_drop_fraction() >= 0

    def test_stacked_pdn_detects_island(self, stack_4l):
        pdn = StackedPDN3D(stack_4l, converters_per_core=4)
        pdn.apply_faults(severed_layer_plan(pdn))
        result = pdn.solve()
        diag = result.diagnostics
        assert diag is not None
        assert diag.n_islands >= 1
        assert diag.n_dropped_nodes == 2 * TEST_GRID**2
        assert np.isfinite(result.solution.node_voltage).all()

    def test_middle_layer_cut_cascades_in_ladder(self, stack_4l):
        # Severing a middle layer of the series ladder also strands the
        # neighbours' interface meshes; the solver must keep pruning
        # until everything left is referenced to ground.
        pdn = StackedPDN3D(stack_4l, converters_per_core=4)
        pdn.apply_faults(severed_layer_plan(pdn, layer=1))
        result = pdn.solve()
        assert result.diagnostics.n_islands >= 1
        assert np.isfinite(result.solution.node_voltage).all()

    def test_strict_solve_of_severed_stack_raises_typed(self, stack_4l):
        pdn = RegularPDN3D(stack_4l)
        pdn.apply_faults(severed_layer_plan(pdn))
        with pytest.raises(SingularCircuitError):
            pdn.solve(resilient=False)
