"""Leakage-temperature feedback loop (extension)."""

import numpy as np
import pytest

from repro.config.stackups import StackConfig
from repro.power.thermal_feedback import (
    CoupledOperatingPoint,
    LeakageThermalLoop,
    ThermalRunawayError,
)
from repro.thermal import ThermalConfig

GRID = 8


@pytest.fixture(scope="module")
def loop_4l():
    return LeakageThermalLoop(StackConfig(n_layers=4, grid_nodes=GRID))


@pytest.fixture(scope="module")
def converged_4l(loop_4l):
    return loop_4l.converge()


class TestConvergence:
    def test_converges(self, converged_4l):
        assert isinstance(converged_4l, CoupledOperatingPoint)
        assert converged_4l.iterations >= 2

    def test_leakage_uplift_sign(self, converged_4l):
        """Below the characterisation temperature leakage shrinks; a
        4-layer air-cooled stack runs near/below 85 C so the uplift is
        small (either sign) but the loop settles self-consistently."""
        assert -0.3 < converged_4l.leakage_uplift < 0.3

    def test_taller_stacks_relatively_leakier(self):
        uplift = {}
        for n in (2, 8):
            loop = LeakageThermalLoop(StackConfig(n_layers=n, grid_nodes=GRID))
            uplift[n] = loop.converge().leakage_uplift
        assert uplift[8] > uplift[2]

    def test_feedback_raises_hotspot(self, loop_4l, converged_4l):
        """Self-consistent hotspot exceeds the open-loop estimate when
        running hotter than the characterisation point, and the 8-layer
        case crosses it."""
        loop8 = LeakageThermalLoop(StackConfig(n_layers=8, grid_nodes=GRID))
        op8 = loop8.converge()
        open_loop = loop8.solver.solve().hotspot
        assert op8.thermal.hotspot > open_loop

    def test_idle_stack_converges_cool(self, loop_4l):
        op = loop_4l.converge(layer_activities=np.zeros(4))
        assert op.thermal.hotspot < 70.0

    def test_activity_shape_checked(self, loop_4l):
        with pytest.raises(ValueError):
            loop_4l.converge(layer_activities=np.ones(5))


class TestRunaway:
    def test_absurd_sensitivity_diverges(self):
        loop = LeakageThermalLoop(
            StackConfig(n_layers=8, grid_nodes=GRID),
            ThermalConfig(sink_resistance=1.5),
            leakage_temp_coefficient=0.12,
        )
        with pytest.raises(ThermalRunawayError):
            loop.converge()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            LeakageThermalLoop(
                StackConfig(n_layers=2, grid_nodes=GRID),
                leakage_temp_coefficient=0.0,
            )
