"""Transient switched-capacitor simulator, and Fig. 3 validation."""

import pytest

from repro.regulator.compact import SCCompactModel
from repro.regulator.control import ClosedLoopControl
from repro.regulator.switchcap_sim import SwitchCapSimulator


@pytest.fixture(scope="module")
def sim():
    return SwitchCapSimulator()


@pytest.fixture(scope="module")
def model():
    return SCCompactModel()


class TestSteadyState:
    def test_no_load_output_near_midpoint(self, sim):
        out = sim.steady_state(0.0)
        assert out.output_voltage == pytest.approx(1.0, abs=1e-3)

    def test_output_droops_under_load(self, sim):
        assert sim.steady_state(0.05).output_voltage < sim.steady_state(0.01).output_voltage

    def test_droop_matches_rseries(self, sim, model):
        """Transient droop tracks the compact model within ~10%."""
        for load in (0.02, 0.06, 0.09):
            tr = sim.steady_state(load)
            expected = load * model.r_series()
            assert tr.voltage_drop == pytest.approx(expected, rel=0.12)

    def test_efficiency_matches_compact_model(self, sim, model):
        """Fig. 3b: model vs sim efficiency agree within a few points."""
        for load in (0.01, 0.03, 0.05, 0.09):
            tr = sim.steady_state(load)
            op = model.operating_point(2.0, 0.0, load)
            assert abs(tr.efficiency - op.efficiency) < 0.04

    def test_closed_loop_validation(self, sim, model):
        """Fig. 3a: agreement holds under frequency modulation."""
        policy = ClosedLoopControl()
        for load in (3.1e-3, 12.5e-3, 50e-3, 100e-3):
            fsw = policy.frequency(model.spec, load)
            tr = sim.steady_state(load, fsw=fsw)
            op = model.operating_point(2.0, 0.0, load, fsw=fsw)
            assert abs(tr.efficiency - op.efficiency) < 0.09

    def test_ripple_shrinks_with_frequency(self, sim):
        slow = sim.steady_state(0.05, fsw=10e6)
        fast = sim.steady_state(0.05, fsw=100e6)
        assert fast.output_ripple < slow.output_ripple

    def test_intermediate_rails(self, sim):
        out = sim.steady_state(0.03, v_top=3.0, v_bottom=1.0)
        assert out.ideal_output_voltage == pytest.approx(2.0)
        assert out.output_voltage < 2.0

    def test_sinking_load(self, sim):
        out = sim.steady_state(-0.04)
        assert out.output_voltage > out.ideal_output_voltage

    def test_input_power_positive_when_sourcing(self, sim):
        assert sim.steady_state(0.05).input_power > 0

    def test_rejects_inverted_rails(self, sim):
        with pytest.raises(ValueError):
            sim.steady_state(0.01, v_top=0.0, v_bottom=1.0)

    def test_rejects_too_few_samples(self, sim):
        with pytest.raises(ValueError):
            sim.steady_state(0.01, samples_per_phase=1)


class TestConstruction:
    def test_rejects_negative_parasitics(self):
        with pytest.raises(ValueError):
            SwitchCapSimulator(bottom_plate_fraction=-0.1)

    def test_rejects_zero_output_cap(self):
        with pytest.raises(ValueError):
            SwitchCapSimulator(output_capacitance=0.0)
