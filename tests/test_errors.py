"""The typed exception hierarchy and its use across the library."""

import numpy as np
import pytest

from repro.errors import (
    ConvergenceError,
    FaultInjectionError,
    QuarantinedTopologyError,
    ReproError,
    ResumeMismatchError,
    SingularCircuitError,
    TaskTimeoutError,
)
from repro.grid.netlist import RESISTOR, Circuit


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            SingularCircuitError,
            ConvergenceError,
            FaultInjectionError,
            TaskTimeoutError,
            QuarantinedTopologyError,
            ResumeMismatchError,
        ):
            assert issubclass(exc, ReproError)

    def test_supervision_errors_carry_context(self):
        err = TaskTimeoutError("slow", task="abcd", timeout_s=2.5)
        assert err.task == "abcd" and err.timeout_s == 2.5
        cause = ValueError("root")
        err = QuarantinedTopologyError(
            "gone", task="abcd", attempts=3, last_error=cause
        )
        assert err.attempts == 3 and err.last_error is cause
        err = ResumeMismatchError("bad line", line=7)
        assert err.line == 7
        assert ResumeMismatchError("no line").line is None

    def test_repro_error_is_runtime_error(self):
        # Pre-existing callers catching RuntimeError keep working.
        assert issubclass(ReproError, RuntimeError)

    def test_solver_errors_carry_diagnostics(self):
        err = SingularCircuitError("boom", diagnostics="diag-sentinel")
        assert err.diagnostics == "diag-sentinel"
        err = ConvergenceError("slow")
        assert err.diagnostics is None

    def test_singular_circuit_raised_as_typed_error(self):
        c = Circuit()
        c.set_ground("gnd")
        c.add_voltage_source("in", "gnd", 1.0)
        c.add_resistor("in", "gnd", 1.0)
        c.add_resistor("x", "y", 1.0)  # floating island
        with pytest.raises(ReproError):
            c.solve()


class TestInputValidation:
    def test_nan_current_source_rejected_with_index(self):
        c = Circuit()
        c.set_ground("gnd")
        with pytest.raises(ValueError, match=r"current\[1\]"):
            c.add_current_sources(
                ["gnd", "gnd"], ["a", "b"], [1.0, float("nan")]
            )

    def test_inf_voltage_source_rejected(self):
        c = Circuit()
        c.set_ground("gnd")
        with pytest.raises(ValueError, match=r"voltage\[0\]"):
            c.add_voltage_source("in", "gnd", float("inf"))

    def test_nan_resistance_rejected(self):
        c = Circuit()
        c.set_ground("gnd")
        with pytest.raises(ValueError, match=r"resistance\[0\]"):
            c.add_resistor("a", "gnd", float("nan"))

    def test_solve_override_rejects_non_finite(self):
        c = Circuit()
        c.set_ground("gnd")
        c.add_current_source("gnd", "a", 1.0)
        c.add_resistor("a", "gnd", 2.0)
        asm = c.assemble()
        with pytest.raises(ValueError, match=r"isource_current\[0\]"):
            asm.solve(isource_current=np.array([np.nan]))

    def test_stale_assembly_raises_fault_injection_error(self):
        c = Circuit()
        c.set_ground("gnd")
        c.add_voltage_source("in", "gnd", 1.0)
        c.add_resistors(["in", "in"], ["gnd", "gnd"], [1.0, 1.0], tag="par")
        asm = c.assemble()
        c.open_elements(RESISTOR, [0])
        with pytest.raises(FaultInjectionError, match="modified after assembly"):
            asm.solve()
