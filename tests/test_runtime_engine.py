"""Sweep engine: batched == sequential, caching, ordering, fan-out."""

import pytest

from repro.core.scenarios import build_pdn, build_regular_pdn, build_stacked_pdn
from repro.faults import FaultPlan, severed_layer_plan
from repro.runtime import PDNSpec, SweepEngine, SweepPoint
from repro.workload.imbalance import interleaved_layer_activities

from tests.conftest import TEST_GRID

REL_TOL = 1e-12


def _ir_drop(outcome):
    return outcome.unwrap().max_ir_drop_fraction()


def _activities(n_layers):
    return [
        tuple(interleaved_layer_activities(n_layers, imbalance))
        for imbalance in (0.0, 0.3, 0.6, 1.0)
    ]


def _assert_close(a, b):
    assert abs(a - b) <= REL_TOL * max(1.0, abs(a))


class TestPDNSpec:
    def test_hashable_value_object(self):
        a = PDNSpec.stacked(4, converters_per_core=4, grid_nodes=TEST_GRID)
        b = PDNSpec.stacked(4, converters_per_core=4, grid_nodes=TEST_GRID)
        assert a == b and hash(a) == hash(b)
        assert a != a.with_(converters_per_core=8)

    def test_validation(self):
        with pytest.raises(ValueError, match="arrangement"):
            PDNSpec(arrangement="diagonal")
        with pytest.raises(ValueError, match="SC converters"):
            PDNSpec(arrangement="regular", converters_per_core=4)
        with pytest.raises(ValueError, match="converters_per_core"):
            PDNSpec(arrangement="voltage-stacked", converters_per_core=0)

    def test_build_matches_kwargs_builders(self):
        spec = PDNSpec.regular(2, topology="Dense", grid_nodes=TEST_GRID)
        via_spec = spec.build().solve().max_ir_drop_fraction()
        via_kwargs = (
            build_regular_pdn(2, topology="Dense", grid_nodes=TEST_GRID)
            .solve()
            .max_ir_drop_fraction()
        )
        _assert_close(via_spec, via_kwargs)

    def test_builders_accept_spec_positionally(self):
        spec = PDNSpec.stacked(2, converters_per_core=4, grid_nodes=TEST_GRID)
        for pdn in (build_stacked_pdn(spec), build_pdn(spec)):
            assert pdn.stack.n_layers == 2

    def test_builders_reject_wrong_arrangement_spec(self):
        with pytest.raises(ValueError, match="voltage-stacked"):
            build_regular_pdn(
                PDNSpec.stacked(2, converters_per_core=4, grid_nodes=TEST_GRID)
            )
        with pytest.raises(ValueError, match="regular"):
            build_stacked_pdn(PDNSpec.regular(2, grid_nodes=TEST_GRID))

    def test_label_mentions_key_fields(self):
        label = PDNSpec.stacked(4, converters_per_core=4, grid_nodes=TEST_GRID).label()
        assert "voltage-stacked" in label and "4L" in label


class TestBatchedMatchesSequential:
    @pytest.mark.parametrize("arrangement", ["regular", "stacked"])
    def test_multi_rhs_identical(self, arrangement):
        n_layers = 4
        if arrangement == "regular":
            spec = PDNSpec.regular(n_layers, grid_nodes=TEST_GRID)
        else:
            spec = PDNSpec.stacked(
                n_layers, converters_per_core=4, grid_nodes=TEST_GRID
            )
        activity_sets = _activities(n_layers)
        points = [SweepPoint(spec=spec, layer_activities=a) for a in activity_sets]
        engine = SweepEngine()
        run = engine.run(points)
        assert engine.cache_info()["misses"] == 1  # one build for all points

        pdn = spec.build()
        for outcome, activities in zip(run.values, activity_sets):
            sequential = pdn.solve(layer_activities=activities)
            batched = outcome.unwrap()
            _assert_close(
                sequential.max_ir_drop_fraction(), batched.max_ir_drop_fraction()
            )
            _assert_close(sequential.efficiency(), batched.efficiency())

    def test_faulted_resilient_identical(self):
        spec = PDNSpec.stacked(4, converters_per_core=4, grid_nodes=TEST_GRID)
        plan = FaultPlan().open_converter_bank("sc.rail1")
        activity_sets = _activities(4)
        points = [
            SweepPoint(spec=spec, layer_activities=a, fault_plan=plan)
            for a in activity_sets
        ]
        run = SweepEngine().run(points)

        pdn = spec.build()
        pdn.apply_faults(FaultPlan().open_converter_bank("sc.rail1"))
        for outcome, activities in zip(run.values, activity_sets):
            assert outcome.survived
            assert outcome.fault_report is not None
            sequential = pdn.solve(layer_activities=activities, resilient=True)
            batched = outcome.unwrap()
            _assert_close(
                sequential.max_ir_drop_fraction(), batched.max_ir_drop_fraction()
            )
            assert batched.diagnostics is not None
            assert (
                batched.diagnostics.fallback == sequential.diagnostics.fallback
            )

    def test_equal_fault_plans_share_one_group(self):
        spec = PDNSpec.stacked(4, converters_per_core=4, grid_nodes=TEST_GRID)
        plans = [FaultPlan().open_converter_bank("sc.rail1") for _ in range(2)]
        assert plans[0].fingerprint() == plans[1].fingerprint()
        engine = SweepEngine()
        engine.run([SweepPoint(spec=spec, fault_plan=p) for p in plans])
        assert engine.cache_info()["misses"] == 1

    def test_strict_batch_error_captured_per_point(self):
        """A singular batch falls back per point with typed errors."""
        spec = PDNSpec.regular(2, grid_nodes=TEST_GRID)
        points = [
            SweepPoint(spec=spec, fault_plan=severed_layer_plan, resilient=False)
        ]
        run = SweepEngine().run(points)
        outcome = run.values[0]
        assert not outcome.survived
        with pytest.raises(Exception):
            outcome.unwrap()


class TestStructureCache:
    def test_cache_hit_on_rerun(self):
        spec = PDNSpec.regular(2, grid_nodes=TEST_GRID)
        points = [SweepPoint(spec=spec)]
        engine = SweepEngine()
        first = engine.run(points)
        second = engine.run(points)
        info = engine.cache_info()
        assert info == {"entries": 1, "hits": 1, "misses": 1, "rebuilds": 0}
        assert second.metrics.groups[0].cached
        _assert_close(
            first.values[0].unwrap().max_ir_drop_fraction(),
            second.values[0].unwrap().max_ir_drop_fraction(),
        )

    def test_cache_invalidates_on_revision_bump(self):
        """Out-of-band netlist mutation must not serve a stale LU."""
        spec = PDNSpec.regular(2, grid_nodes=TEST_GRID)
        points = [SweepPoint(spec=spec)]
        engine = SweepEngine()
        baseline = engine.run(points).values[0].unwrap().max_ir_drop_fraction()
        # Mutate the cached PDN's circuit behind the engine's back.
        cached_pdn = next(iter(engine._cache.values())).pdn
        severed_layer_plan(cached_pdn).apply(cached_pdn)
        rebuilt = engine.run(points).values[0].unwrap().max_ir_drop_fraction()
        assert engine.cache_info()["rebuilds"] == 1
        _assert_close(baseline, rebuilt)  # rebuilt from the pristine spec

    def test_clear_cache(self):
        engine = SweepEngine()
        engine.run([SweepPoint(spec=PDNSpec.regular(2, grid_nodes=TEST_GRID))])
        engine.clear_cache()
        assert engine.cache_info()["entries"] == 0


class TestOrderingAndFanOut:
    def test_values_in_input_order_across_groups(self):
        specs = [
            PDNSpec.regular(2, grid_nodes=TEST_GRID),
            PDNSpec.stacked(2, converters_per_core=4, grid_nodes=TEST_GRID),
        ]
        # Interleave groups so input order != group order.
        points = [
            SweepPoint(spec=specs[i % 2], tag=i) for i in range(6)
        ]
        run = SweepEngine().run(points)
        assert [o.point.tag for o in run.values] == list(range(6))

    def test_process_fanout_matches_serial(self):
        specs = [
            PDNSpec.regular(2, grid_nodes=TEST_GRID),
            PDNSpec.stacked(2, converters_per_core=4, grid_nodes=TEST_GRID),
        ]
        points = [SweepPoint(spec=s) for s in specs for _ in range(2)]
        serial = SweepEngine(workers=1).run(points, extract=_ir_drop)
        parallel = SweepEngine(workers=2).run(points, extract=_ir_drop)
        assert serial.metrics.mode == "serial"
        for a, b in zip(serial.values, parallel.values):
            _assert_close(a, b)

    def test_unpicklable_extract_falls_back_to_serial(self):
        points = [
            SweepPoint(spec=PDNSpec.regular(2, grid_nodes=TEST_GRID)),
            SweepPoint(
                spec=PDNSpec.stacked(2, converters_per_core=4, grid_nodes=TEST_GRID)
            ),
        ]
        run = SweepEngine(workers=2).run(
            points, extract=lambda o: o.unwrap().max_ir_drop_fraction()
        )
        assert run.metrics.mode == "serial"
        assert all(v is not None for v in run.values)


class TestMetrics:
    def test_stage_metrics_populated(self):
        spec = PDNSpec.stacked(2, converters_per_core=4, grid_nodes=TEST_GRID)
        run = SweepEngine().run(
            [SweepPoint(spec=spec, layer_activities=a) for a in _activities(2)]
        )
        metrics = run.metrics
        assert metrics.n_points == 4
        assert metrics.n_groups == 1
        assert metrics.n_solve_calls == 1  # one batched call
        group = metrics.groups[0]
        assert group.build_s > 0 and group.factorize_s > 0 and group.solve_s > 0
        payload = metrics.to_json()
        assert payload["schema"] == 8
        assert len(payload["run_fingerprint"]) == 16
        assert payload["totals"]["n_points"] == 4
        assert payload["totals"]["retries"] == 0
        assert payload["totals"]["quarantined"] == 0
        assert payload["totals"]["contracts_s"] >= 0
        assert payload["escalations"].get("lu", 0) == 4
        assert payload["contracts"].get("pass", 0) > 0
        assert "summary" not in payload  # stable machine layout only

    def test_bench_json_written(self, tmp_path, monkeypatch):
        from repro.runtime.metrics import BENCH_DIR_ENV

        monkeypatch.setenv(BENCH_DIR_ENV, str(tmp_path))
        spec = PDNSpec.regular(2, grid_nodes=TEST_GRID)
        SweepEngine().run([SweepPoint(spec=spec)], bench_name="engine_unit")
        path = tmp_path / "BENCH_engine_unit.json"
        assert path.exists()
        import json

        payload = json.loads(path.read_text())
        assert payload["totals"]["n_points"] == 1


class TestSolverBatchAPI:
    def test_solve_batch_on_builder(self):
        pdn = build_stacked_pdn(2, converters_per_core=4, grid_nodes=TEST_GRID)
        activity_sets = _activities(2)
        batched = pdn.solve_batch(activity_sets)
        assert len(batched) == len(activity_sets)
        for result, activities in zip(batched, activity_sets):
            sequential = pdn.solve(layer_activities=activities)
            _assert_close(
                sequential.max_ir_drop_fraction(), result.max_ir_drop_fraction()
            )

    def test_severed_strict_solve_raises(self):
        """Factorisation may 'succeed' on a severed netlist; the strict
        solve's residual check is what rejects the garbage answer."""
        from repro.errors import SingularCircuitError

        pdn = build_regular_pdn(2, grid_nodes=TEST_GRID)
        assert pdn.assembled().factorize() is True
        severed = build_regular_pdn(2, grid_nodes=TEST_GRID)
        severed.apply_faults(severed_layer_plan(severed))
        with pytest.raises(SingularCircuitError):
            severed.solve(resilient=False)

    def test_solve_batch_stale_revision_raises(self):
        from repro.errors import FaultInjectionError

        pdn = build_regular_pdn(2, grid_nodes=TEST_GRID)
        assembled = pdn.circuit.assemble()
        severed_layer_plan(pdn).apply(pdn)
        with pytest.raises(FaultInjectionError, match="modified after assembly"):
            assembled.solve_batch(isource_currents=[None])
