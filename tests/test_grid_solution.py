"""Solution accessors not covered by the circuit-level tests."""

import numpy as np
import pytest

from repro.grid.netlist import Circuit


@pytest.fixture(scope="module")
def solved():
    c = Circuit()
    c.set_ground("gnd")
    c.add_voltage_source("in", "gnd", 2.0, tag="supply")
    c.add_resistor("in", "a", 1.0, tag="top")
    c.add_resistor("a", "gnd", 1.0, tag="bottom")
    c.add_converter("in", "gnd", "m", r_series=0.5, tag="sc")
    c.add_current_source("m", "gnd", 0.1, tag="load")
    return c, c.solve()


class TestVoltageAccessors:
    def test_voltages_vectorised(self, solved):
        _, sol = solved
        values = sol.voltages(["in", "a", "gnd"])
        assert values[0] == pytest.approx(2.0)
        assert values[2] == 0.0

    def test_voltage_by_id(self, solved):
        circuit, sol = solved
        ids = circuit.nodes(["a"])
        assert sol.voltage_by_id(ids)[0] == pytest.approx(sol.voltage("a"))

    def test_node_voltage_vector_includes_ground(self, solved):
        circuit, sol = solved
        assert sol.node_voltage[circuit.ground] == 0.0
        assert len(sol.node_voltage) == circuit.node_count


class TestBranchAccessors:
    def test_resistor_drops_by_tag(self, solved):
        _, sol = solved
        drops = sol.resistor_drops("top")
        assert drops[0] == pytest.approx(2.0 - sol.voltage("a"))

    def test_resistor_drops_all(self, solved):
        _, sol = solved
        assert len(sol.resistor_drops()) == 2

    def test_resistor_power_by_tag(self, solved):
        _, sol = solved
        total = sol.resistor_power()
        top = sol.resistor_power("top")
        bottom = sol.resistor_power("bottom")
        assert total == pytest.approx(top + bottom)

    def test_isource_values_by_tag(self, solved):
        _, sol = solved
        assert sol.isource_values("load")[0] == pytest.approx(0.1)

    def test_isource_power(self, solved):
        _, sol = solved
        expected = sol.voltage("m") * 0.1
        assert sol.isource_power("load") == pytest.approx(expected)

    def test_vsource_power_by_tag(self, solved):
        _, sol = solved
        assert sol.vsource_power("supply") == pytest.approx(sol.vsource_power())


class TestConverterAccessors:
    def test_output_voltages(self, solved):
        _, sol = solved
        assert sol.converter_output_voltages("sc")[0] == pytest.approx(
            sol.voltage("m")
        )

    def test_series_loss_all_vs_tag(self, solved):
        _, sol = solved
        assert sol.converter_series_loss() == pytest.approx(
            sol.converter_series_loss("sc")
        )

    def test_missing_tag_yields_empty(self, solved):
        _, sol = solved
        assert sol.converter_output_currents("nope").size == 0
