"""Observability end-to-end: spans through real sweeps, workers, resume.

These tests exercise the hard guarantees of docs/OBSERVABILITY.md:

* spans recorded inside ``ProcessPoolExecutor`` workers ship back and
  reassemble into **one** coherent tree under the coordinator's sweep
  span,
* ``--resume`` appends to the existing ``trace-<fp>.jsonl`` without
  duplicating span ids,
* the BENCH ``stage_totals`` are reproducible from spans alone (<1%;
  by construction they are the same measurements),
* tracing must not perturb the numbers: outputs are **bit-identical**
  with tracing on or off.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.export import load_trace, load_trace_header, trace_path
from repro.obs.profile import build_tree, stage_totals_from_spans
from repro.obs.trace import get_tracer
from repro.runtime import (
    PDNSpec,
    RunSupervisor,
    SupervisorConfig,
    SweepEngine,
    SweepPoint,
)

from tests.conftest import TEST_GRID


def _points(n_groups: int = 2, per_group: int = 2):
    points = []
    for n_layers in range(2, 2 + n_groups):
        spec = PDNSpec.regular(n_layers, grid_nodes=TEST_GRID)
        for i in range(per_group):
            activities = tuple([1.0 - 0.1 * i] + [1.0] * (n_layers - 1))
            points.append(SweepPoint(spec=spec, layer_activities=activities))
    return points


def _ir_extract(outcome):
    return outcome.unwrap().max_ir_drop()


@pytest.fixture
def traced(tmp_path, monkeypatch):
    """Enable tracing into ``tmp_path``; leave the tracer clean after."""
    from repro.obs.trace import TRACE_DIR_ENV

    monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
    tracer = get_tracer()
    tracer.drain()
    tracer.enable()
    yield tmp_path
    tracer.drain()
    tracer.disable()
    tracer.set_trace_id(None)


def _single_trace(trace_dir):
    traces = sorted(trace_dir.glob("trace-*.jsonl"))
    assert len(traces) == 1, [t.name for t in traces]
    return traces[0]


class TestSpanTreeAcrossProcesses:
    def test_serial_run_forms_one_tree(self, traced):
        run = SweepEngine().run(_points())
        path = trace_path(run.metrics.run_fingerprint, traced)
        spans = load_trace(path)
        roots = build_tree(spans)
        assert len(roots) == 1
        assert roots[0].span.name == "sweep"
        names = {n.span.name for n in roots[0].walk()}
        assert {"group", "build", "factorize", "solve", "post"} <= names

    def test_process_fanout_reassembles_under_sweep(self, traced):
        run = SweepEngine(workers=2).run(_points(), extract=_ir_extract)
        assert run.metrics.mode == "process"
        spans = load_trace(_single_trace(traced))
        roots = build_tree(spans)
        assert len(roots) == 1, "worker spans must re-parent under the sweep"
        sweep = roots[0]
        assert sweep.span.name == "sweep"
        groups = [n for n in sweep.walk() if n.span.name == "group"]
        assert len(groups) == 2
        # Worker spans really came from other processes...
        assert {g.span.pid for g in groups} - {sweep.span.pid}
        # ...yet parent ids all resolve inside the one tree.
        ids = {n.span.span_id for n in sweep.walk()}
        for node in sweep.walk():
            parent = node.span.parent_id
            assert parent is None or parent in ids
        # Every span carries the run's trace id.
        fps = {s.trace_id for s in spans}
        assert fps == {run.metrics.run_fingerprint}

    def test_supervised_run_records_task_spans(self, traced):
        sup = RunSupervisor(config=SupervisorConfig(max_retries=0))
        sup.run(_points(), extract=_ir_extract)
        spans = load_trace(_single_trace(traced))
        tasks = [s for s in spans if s.name == "task"]
        assert len(tasks) == 2
        assert all(t.attributes["status"] == "done" for t in tasks)


class TestResumeAppends:
    def test_resume_appends_without_duplicate_ids(self, traced, tmp_path):
        run_dir = tmp_path / "run"
        points = _points()
        first = RunSupervisor(
            config=SupervisorConfig(run_dir=str(run_dir))
        ).run(points, extract=_ir_extract)
        path = _single_trace(traced)
        first_spans = load_trace(path)

        resumed = RunSupervisor(
            config=SupervisorConfig(run_dir=str(run_dir), resume=True)
        ).run(points, extract=_ir_extract)
        assert resumed.metrics.resumed == 2
        assert resumed.values == first.values

        # Same fingerprint -> same file, appended not duplicated.
        assert _single_trace(traced) == path
        spans = load_trace(path)
        ids = [s.span_id for s in spans]
        assert len(ids) == len(set(ids))
        assert len(spans) > len(first_spans)  # the resumed sweep appended
        header = load_trace_header(path)
        assert header["run_fingerprint"] == resumed.metrics.run_fingerprint


class TestBenchAgreement:
    def test_stage_totals_reproducible_from_spans(
        self, traced, tmp_path, monkeypatch
    ):
        from repro.runtime.metrics import BENCH_DIR_ENV

        bench_dir = tmp_path / "bench"
        monkeypatch.setenv(BENCH_DIR_ENV, str(bench_dir))
        run = SweepEngine().run(_points(3, 2), bench_name="obs_agreement")
        payload = json.loads(
            (bench_dir / "BENCH_obs_agreement.json").read_text()
        )
        assert payload["schema"] == 8
        assert payload["run_fingerprint"] == run.metrics.run_fingerprint

        spans = load_trace(trace_path(run.metrics.run_fingerprint, traced))
        from_spans = stage_totals_from_spans(spans)
        # BENCH rounds to 6 decimals, hence the small absolute slack.
        for stage in ("build", "factorize", "solve", "post", "contracts"):
            bench_value = payload["totals"][f"{stage}_s"]
            assert from_spans[stage] == pytest.approx(
                bench_value, rel=0.01, abs=1e-6
            ), stage


class TestTracingIsInert:
    def test_outputs_bit_identical_on_off(self, tmp_path, monkeypatch):
        from repro.obs.trace import TRACE_DIR_ENV

        points = _points()
        tracer = get_tracer()
        assert not tracer.enabled
        baseline = SweepEngine().run(points, extract=_ir_extract)

        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
        tracer.drain()
        tracer.enable()
        try:
            traced_run = SweepEngine().run(points, extract=_ir_extract)
        finally:
            tracer.drain()
            tracer.disable()
            tracer.set_trace_id(None)
        assert traced_run.values == baseline.values  # bit-identical floats

    def test_disabled_leaves_no_files(self, tmp_path, monkeypatch):
        from repro.obs.trace import TRACE_DIR_ENV

        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
        SweepEngine().run(_points(1, 1))
        assert not list(tmp_path.glob("trace-*.jsonl"))


class TestTraceCLI:
    def test_repro_trace_reports_run(self, traced, capsys):
        from repro.cli import main

        run = SweepEngine().run(_points())
        code = main(["trace", str(traced)])
        out = capsys.readouterr().out
        assert code == 0
        assert run.metrics.run_fingerprint in out
        assert "stage totals from spans" in out
        assert "slowest topology groups" in out

    def test_repro_trace_missing_dir_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["trace", str(tmp_path)])
        assert code == 2
        assert "no trace-" in capsys.readouterr().err
