"""SC converter specification (paper Sec. 3.1)."""

import pytest

from repro.config.converters import (
    CAPACITOR_TECHNOLOGIES,
    SCConverterSpec,
    default_sc_spec,
)


class TestSCConverterSpec:
    def test_paper_design_point(self):
        spec = default_sc_spec()
        assert spec.fly_capacitance == pytest.approx(8e-9)
        assert spec.switching_frequency == pytest.approx(50e6)
        assert spec.interleaving == 4
        assert spec.max_load_current == pytest.approx(0.1)

    def test_area_uses_selected_technology(self):
        spec = default_sc_spec()
        assert spec.area == pytest.approx(0.472e-6)
        trench = SCConverterSpec(capacitor_technology="trench")
        assert trench.area == pytest.approx(0.082e-6)

    def test_rejects_unknown_capacitor(self):
        with pytest.raises(ValueError, match="capacitor technology"):
            SCConverterSpec(capacitor_technology="graphene")

    def test_rejects_zero_duty_cycle(self):
        with pytest.raises(ValueError):
            SCConverterSpec(duty_cycle=0.0)


class TestCapacitorTechnologies:
    def test_paper_areas(self):
        assert CAPACITOR_TECHNOLOGIES["MIM"].converter_area == pytest.approx(0.472e-6)
        assert CAPACITOR_TECHNOLOGIES["ferroelectric"].converter_area == pytest.approx(0.102e-6)
        assert CAPACITOR_TECHNOLOGIES["trench"].converter_area == pytest.approx(0.082e-6)

    def test_density_ordering(self):
        assert (
            CAPACITOR_TECHNOLOGIES["MIM"].density
            < CAPACITOR_TECHNOLOGIES["ferroelectric"].density
            <= CAPACITOR_TECHNOLOGIES["trench"].density
        )
