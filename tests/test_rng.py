"""Deterministic RNG construction."""

import numpy as np

from repro.utils.rng import DEFAULT_SEED, make_rng


class TestMakeRng:
    def test_default_is_reproducible(self):
        a = make_rng().random(4)
        b = make_rng().random(4)
        assert np.array_equal(a, b)

    def test_int_seed(self):
        a = make_rng(7).random(4)
        b = make_rng(7).random(4)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(make_rng(1).random(4), make_rng(2).random(4))

    def test_generator_passthrough_shares_state(self):
        gen = np.random.default_rng(3)
        same = make_rng(gen)
        assert same is gen
        first = same.random()
        second = make_rng(gen).random()
        assert first != second  # state advanced, not reset

    def test_default_seed_exposed(self):
        assert isinstance(DEFAULT_SEED, int)
