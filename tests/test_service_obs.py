"""Service observability e2e: tracing, typed telemetry, dash, recorder.

Boots real services (background thread, ephemeral port) and exercises
the full wire path: trace-context propagation over the query envelope,
the typed metrics surface (histograms + SLO counters, wire form,
fleet-wide merge), the ``repro dash`` aggregation helpers, the flight
recorder's post-mortem dumps, and multi-file trace stitching.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.export import flush_spans, load_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, get_tracer
from repro.runtime import PDNSpec
from repro.service import ServiceClient, ServiceConfig, serve_in_background
from repro.service.dash import (
    ReplicaScrape,
    fleet_summary,
    merge_scrapes,
    render_dashboard,
    scrape_fleet,
)

from tests.conftest import TEST_GRID


def _spec(n_layers: int = 2, grid: int = TEST_GRID) -> PDNSpec:
    return PDNSpec.regular(n_layers, grid_nodes=grid)


def _config(tmp_path, **overrides) -> ServiceConfig:
    settings = dict(
        bind="127.0.0.1:0",
        cache_dir=str(tmp_path / "svc-cache"),
        bench_name=None,
        # Keep the periodic flusher out of the way: tests drain the
        # process-global tracer themselves (client and "server" share
        # one process here, unlike production).
        trace_flush_s=3600.0,
    )
    settings.update(overrides)
    return ServiceConfig(**settings)


@pytest.fixture
def serve(tmp_path):
    handles = []

    def _serve(solve_fn=None, **overrides):
        handle = serve_in_background(
            config=_config(tmp_path, **overrides), solve_fn=solve_fn
        )
        handles.append(handle)
        return handle

    yield _serve
    for handle in handles:
        handle.stop(drain=False)


@pytest.fixture
def tracer():
    t = get_tracer()
    t.drain()
    t.enable()
    yield t
    t.drain()
    t.disable()
    t.set_trace_id(None)


def _stub_solver(spec, activities, deadline):
    return {"efficiency": 0.9, "max_ir_drop_v": 0.01, "grid": spec.grid_nodes}


def _failing_solver(spec, activities, deadline):
    raise RuntimeError("injected backend failure")


# ----------------------------------------------------------------------
# trace-context propagation over the wire
# ----------------------------------------------------------------------

class TestTracePropagation:
    def test_query_yields_one_connected_tree(self, serve, tracer):
        handle = serve(solve_fn=_stub_solver)
        with ServiceClient(handle.address) as client:
            response = client.query(_spec())
        assert response["status"] == "ok"
        spans = tracer.drain()
        by_name = {}
        for span in spans:
            by_name.setdefault(span.name, span)
        hop = by_name["service.client"]
        request = by_name["service.request"]
        # The replica anchored its request span under the client's hop
        # span, sharing the client-minted trace id: one tree, two sides
        # of the TCP connection.
        assert request.parent_id == hop.span_id
        assert hop.trace_id is not None
        assert request.trace_id == hop.trace_id
        assert hop.attributes["transport"] == "tcp"
        # The solve path hangs off the request: cache probe, queue
        # wait, then the backend solve, all under the same trace.
        ids = {s.span_id for s in spans}
        for name in ("service.cache_probe", "service.queued", "service.solve"):
            span = by_name[name]
            assert span.trace_id == hop.trace_id, name
            assert span.parent_id in ids, name

    def test_tracing_off_sends_no_envelope_and_buffers_nothing(self, serve):
        tracer = get_tracer()
        assert not tracer.enabled
        handle = serve(solve_fn=_stub_solver)
        with ServiceClient(handle.address) as client:
            response = client.query(_spec())
        assert response["status"] == "ok"
        assert len(tracer) == 0

    def test_traced_and_untraced_answers_identical(self, serve, tracer):
        handle = serve(solve_fn=_stub_solver)
        with ServiceClient(handle.address) as client:
            traced = client.query(_spec())
            tracer.drain()
            tracer.disable()
            try:
                untraced = client.query(_spec())
            finally:
                tracer.enable()
        assert traced["result"] == untraced["result"]

    def test_shutdown_flushes_replica_trace(self, serve, tracer, monkeypatch):
        handle = serve(solve_fn=_stub_solver)
        with ServiceClient(handle.address) as client:
            client.query(_spec())
        handle.stop(drain=True)
        import pathlib

        cache_dir = handle.service.config.cache_dir
        path = (
            pathlib.Path(cache_dir)
            / f"trace-{handle.service.replica_id}.jsonl"
        )
        assert path.exists()
        spans = load_trace(path)
        assert any(s.name == "service.request" for s in spans)


# ----------------------------------------------------------------------
# typed telemetry: histograms, SLO, wire form
# ----------------------------------------------------------------------

class TestServiceTelemetry:
    def test_metrics_series_round_trips_histograms(self, serve):
        handle = serve(solve_fn=_stub_solver, slo_latency_s=30.0)
        with ServiceClient(handle.address) as client:
            client.query(_spec())
            client.query(_spec())
            metrics = client.metrics()
        assert "service_query_latency_seconds_bucket" in metrics["prometheus"]
        registry = MetricsRegistry.from_wire(metrics["series"])
        latency = registry.histogram("service_query_latency")
        assert latency.total_count() == 2
        outcomes = latency.count_by_label("outcome")
        assert outcomes.get("miss") == 1 and outcomes.get("hit") == 1
        stage = registry.histogram("service_stage_latency")
        assert stage.count_by_label("stage").get("cache", 0) >= 2

    def test_latency_and_slo_in_counters_view(self, serve):
        handle = serve(solve_fn=_stub_solver, slo_latency_s=30.0)
        with ServiceClient(handle.address) as client:
            client.query(_spec())
            counters = client.metrics()["counters"]
        latency = counters["latency"]
        assert latency["count"] == 1
        assert latency["by_outcome"] == {"miss": 1}
        assert latency["p95_s"] is not None
        slo = counters["slo"]
        assert slo["objective_s"] == 30.0
        assert slo["ok"] == 1 and slo["breached"] == 0
        assert slo["budget_burn"] == 0.0

    def test_flights_claims_counter_exported(self, serve):
        handle = serve(solve_fn=_stub_solver)
        with ServiceClient(handle.address) as client:
            client.query(_spec())
            text = client.metrics()["prometheus"]
        assert 'repro_service_replica_total{event="claims"} 1' in text


# ----------------------------------------------------------------------
# fleet-wide aggregation (repro dash)
# ----------------------------------------------------------------------

class TestDashAggregation:
    def test_two_replicas_merge_to_fleet_totals(self, serve, tmp_path):
        first = serve(solve_fn=_stub_solver, replica_id="dash-a")
        second = serve(solve_fn=_stub_solver, replica_id="dash-b")
        with ServiceClient(first.address) as client:
            client.query(_spec())
            client.query(_spec())
        with ServiceClient(second.address) as client:
            client.query(_spec(n_layers=4))
        cache_dir = tmp_path / "svc-cache"
        scrapes = scrape_fleet(cache_dir)
        assert len(scrapes) == 2 and all(s.ok for s in scrapes)
        merged = merge_scrapes(scrapes)
        summary = fleet_summary(merged)
        # Fleet totals are the exact per-replica sums.
        per_replica = sum(
            s.counters["requests"].get("query", 0) for s in scrapes
        )
        assert summary["queries"] == per_replica == 3
        assert summary["latency_count"] == 3
        assert summary["outcomes"] == {"miss": 2, "hit": 1}
        table = render_dashboard(scrapes, merged)
        assert "fleet: 2/2 replicas" in table
        assert "queries=3" in table
        for scrape in scrapes:
            assert scrape.replica_id in table

    def test_dead_replica_is_a_row_not_an_error(self, tmp_path):
        directory = tmp_path / "dead"
        directory.mkdir()
        (directory / "service.json").write_text(
            json.dumps(
                {"replicas": [{"id": "r1", "address": "127.0.0.1:1"}]}
            )
        )
        scrapes = scrape_fleet(directory, timeout_s=0.5)
        assert len(scrapes) == 1 and not scrapes[0].ok
        assert scrapes[0].error
        table = render_dashboard(scrapes, merge_scrapes(scrapes))
        assert "(unreachable)" in table
        assert "fleet: 0/1 replicas" in table


# ----------------------------------------------------------------------
# flight recorder
# ----------------------------------------------------------------------

class TestFlightRecorder:
    def _dump_path(self, handle):
        import pathlib

        service = handle.service
        return (
            pathlib.Path(service.config.cache_dir)
            / f"flight-recorder-{service.replica_id}.json"
        )

    def test_dumps_on_shutdown(self, serve):
        handle = serve(solve_fn=_stub_solver)
        with ServiceClient(handle.address) as client:
            client.query(_spec())
        handle.stop(drain=True)
        payload = json.loads(self._dump_path(handle).read_text())
        assert payload["reason"] == "shutdown"
        assert payload["replica"] == handle.service.replica_id
        (event,) = payload["events"]
        assert event["outcome"] == "miss" and event["code"] == 200

    def test_dumps_immediately_on_server_error(self, serve):
        handle = serve(solve_fn=_failing_solver)
        with ServiceClient(handle.address) as client:
            response = client.query(_spec())
        assert response["code"] == 500
        payload = json.loads(self._dump_path(handle).read_text())
        assert payload["reason"] == "status-500"
        assert payload["events"][-1]["outcome"] == "error"

    def test_recorder_disabled_writes_nothing(self, serve):
        handle = serve(solve_fn=_stub_solver, flight_recorder=0)
        with ServiceClient(handle.address) as client:
            client.query(_spec())
        handle.stop(drain=True)
        assert not self._dump_path(handle).exists()


# ----------------------------------------------------------------------
# multi-file trace stitching (repro trace)
# ----------------------------------------------------------------------

class TestStitching:
    def _span(self, name, span_id, parent=None, pid=1, trace="t1"):
        return Span(
            name=name,
            span_id=span_id,
            parent_id=parent,
            trace_id=trace,
            start_s=0.0,
            duration_s=0.001,
            pid=pid,
            tid=1,
        )

    def test_stitch_dedupes_and_counts_tcp_hops(self, tmp_path):
        from repro.core.experiments.traceview import (
            count_tcp_hops,
            stitch_traces,
        )

        client_spans = [
            self._span("experiment", "e1", pid=1),
            self._span("service.client", "c1", parent="e1", pid=1),
        ]
        # The replica flushed its own spans plus an adopted duplicate
        # of the client hop (remote-anchor adoption can double-write).
        replica_spans = [
            self._span("service.client", "c1", parent="e1", pid=1),
            self._span("service.request", "r1", parent="c1", pid=2),
            self._span("service.solve", "s1", parent="r1", pid=2),
        ]
        a = flush_spans(client_spans, "clientfp", trace_dir=tmp_path)
        b = flush_spans(replica_spans, "replicafp", trace_dir=tmp_path)
        spans, report = stitch_traces([a, b])
        assert len(spans) == 4  # c1 deduplicated
        assert len({s.span_id for s in spans}) == 4
        assert any("duplicate" in line for line in report)
        # One wire crossing: r1 (pid 2) under the client hop (pid 1).
        assert count_tcp_hops(spans) == 1

    def test_trace_experiment_stitches_directory(self, tmp_path):
        from repro.core.experiments.base import ExperimentConfig
        from repro.core.experiments.traceview import TraceExperiment

        flush_spans(
            [self._span("service.client", "c1", pid=1)],
            "clientfp",
            trace_dir=tmp_path,
        )
        flush_spans(
            [
                self._span("service.request", "r1", parent="c1", pid=2),
                self._span("solve", "s1", parent="r1", pid=2),
            ],
            "replicafp",
            trace_dir=tmp_path,
        )
        config = ExperimentConfig()
        config.options["path"] = str(tmp_path)
        chrome = tmp_path / "chrome.json"
        config.options["chrome"] = str(chrome)
        result = TraceExperiment().run(config)
        assert result.data["n_spans"] == 3
        assert result.data["tcp_hops"] == 1
        assert len(result.data["stitched"]) == 2
        assert "stitched 2 trace files" in result.table
        assert "tcp hops: 1" in result.table
        # --chrome covers stitched service traces too.
        events = json.loads(chrome.read_text())["traceEvents"]
        assert len(events) >= 3
