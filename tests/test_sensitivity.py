"""Parameter-sensitivity (tornado) analysis."""

import pytest

from repro.config.stackups import StackConfig
from repro.core.sensitivity import SensitivityAnalysis, SensitivityEntry

GRID = 8


@pytest.fixture(scope="module")
def analysis():
    return SensitivityAnalysis(
        StackConfig(n_layers=4, grid_nodes=GRID), arrangement="regular"
    )


@pytest.fixture(scope="module")
def entries(analysis):
    return analysis.run()


class TestEntries:
    def test_all_parameters_evaluated(self, entries):
        names = {e.parameter for e in entries}
        assert names == {
            "package_resistance",
            "c4_pad_resistance",
            "tsv_resistance",
            "metal_thickness",
            "metal_width",
        }

    def test_sorted_by_swing(self, entries):
        swings = [e.swing for e in entries]
        assert swings == sorted(swings, reverse=True)

    def test_resistances_move_ir_drop_monotonically(self, entries):
        by_name = {e.parameter: e for e in entries}
        for name in ("package_resistance", "c4_pad_resistance", "tsv_resistance"):
            e = by_name[name]
            assert e.metric_at_high > e.metric_at_low

    def test_thicker_metal_reduces_ir_drop(self, entries):
        e = {x.parameter: x for x in entries}["metal_thickness"]
        assert e.metric_at_high < e.metric_at_low

    def test_package_dominates_regular_pdn(self, entries):
        """For the 8x-current regular PDN the package/pad path is the
        big lever (the calibration discussion in DESIGN.md)."""
        assert entries[0].parameter in ("package_resistance", "c4_pad_resistance",
                                        "tsv_resistance")

    def test_relative_swing(self, entries):
        for e in entries:
            assert e.relative_swing >= 0

    def test_excursion_values(self, analysis, entries):
        for e in entries:
            assert e.high_value == pytest.approx(e.low_value * 3)  # (1.5/0.5)


class TestInterface:
    def test_subset_of_parameters(self, analysis):
        out = analysis.run(parameters=["tsv_resistance"])
        assert len(out) == 1

    def test_unknown_parameter_rejected(self, analysis):
        with pytest.raises(ValueError, match="unknown"):
            analysis.run(parameters=["phlogiston"])

    def test_efficiency_metric(self):
        analysis = SensitivityAnalysis(
            StackConfig(n_layers=2, grid_nodes=GRID),
            metric="efficiency",
        )
        entries = analysis.run(parameters=["package_resistance"])
        e = entries[0]
        # More package resistance burns more power -> lower efficiency.
        assert e.metric_at_high < e.metric_at_low

    def test_stacked_arrangement(self):
        analysis = SensitivityAnalysis(
            StackConfig(n_layers=2, grid_nodes=GRID),
            arrangement="voltage-stacked",
            converters_per_core=4,
        )
        entries = analysis.run(parameters=["package_resistance", "tsv_resistance"])
        assert len(entries) == 2

    def test_validation(self):
        stack = StackConfig(n_layers=2, grid_nodes=GRID)
        with pytest.raises(ValueError):
            SensitivityAnalysis(stack, arrangement="diagonal")
        with pytest.raises(ValueError):
            SensitivityAnalysis(stack, metric="sparkle")
        with pytest.raises(ValueError):
            SensitivityAnalysis(stack, excursion=1.5)

    def test_format(self, analysis, entries):
        text = analysis.format(entries)
        assert "Sensitivity" in text
        assert "package_resistance" in text
