"""Unit tests for the repro.obs tracing/metrics/logging layer."""

import json
import logging

import pytest

from repro.obs.export import (
    chrome_trace_events,
    flush_spans,
    load_trace,
    load_trace_header,
    trace_path,
    write_chrome_trace,
    write_prometheus,
)
from repro.obs.logs import JsonLineFormatter, configure_logging, get_logger
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import (
    aggregate_by_name,
    attribution,
    build_tree,
    render_profile,
    slowest_groups,
    stage_totals_from_spans,
)
from repro.obs.trace import (
    Span,
    activate_worker_context,
    get_tracer,
)


@pytest.fixture
def tracer():
    """The global tracer, enabled and guaranteed clean afterwards."""
    t = get_tracer()
    t.drain()
    t.enable()
    yield t
    t.drain()
    t.disable()
    t.set_trace_id(None)


class TestTracer:
    def test_disabled_span_is_shared_noop(self):
        t = get_tracer()
        assert not t.enabled
        a = t.span("anything")
        b = t.span("else")
        assert a is b  # one shared null object: no allocation per call
        with a as s:
            s.set(ignored=1)
        assert len(t) == 0
        assert t.record("x", 1.0) is None
        assert t.worker_context() is None

    def test_nesting_and_parent_ids(self, tracer):
        with tracer.span("outer"):
            outer_id = tracer.current_span_id()
            with tracer.span("inner"):
                assert tracer.current_span_id() != outer_id
        spans = tracer.drain()
        by_name = {s.name: s for s in spans}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None
        assert by_name["inner"].duration_s <= by_name["outer"].duration_s

    def test_exception_marks_error_and_propagates(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        (span,) = tracer.drain()
        assert span.status == "error"
        assert span.attributes["error"] == "ValueError"

    def test_record_preserves_caller_duration(self, tracer):
        span = tracer.record("contracts", 0.125, rung="lu")
        assert span.duration_s == 0.125
        assert tracer.drain()[0].attributes == {"rung": "lu"}

    def test_worker_context_round_trip(self, tracer):
        tracer.set_trace_id("fp1234")
        with tracer.span("parent"):
            ctx = tracer.worker_context()
            parent_id = tracer.current_span_id()
        assert ctx == {
            "enabled": True,
            "trace_id": "fp1234",
            "parent_id": parent_id,
            "attrs": {},
        }
        # Simulate the worker side: activation clears inherited state and
        # re-parents new spans under the coordinator's live span.
        assert activate_worker_context(ctx)
        with tracer.span("child"):
            pass
        child = [s for s in tracer.drain() if s.name == "child"][0]
        assert child.parent_id == parent_id
        assert child.trace_id == "fp1234"

    def test_activate_none_is_noop(self):
        assert not activate_worker_context(None)
        assert not get_tracer().enabled

    def test_span_json_round_trip(self, tracer):
        import dataclasses

        with tracer.span("s", key="a/b", n=3):
            pass
        (span,) = tracer.drain()
        clone = Span.from_json(json.loads(json.dumps(span.to_json())))
        # to_json rounds the wall-clock anchor to 6 decimals (µs).
        assert clone == dataclasses.replace(span, start_s=round(span.start_s, 6))


class TestMetrics:
    def test_counter(self):
        c = Counter("points_total", "points")
        c.inc()
        c.inc(3, mode="serial")
        assert c.value() == 1
        assert c.value(mode="serial") == 3
        assert c.total() == 4
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_and_histogram(self):
        g = Gauge("run", "run facts")
        g.set(4, field="workers")
        g.inc(0.5, field="wall_s")
        assert g.value(field="workers") == 4
        h = Histogram("stage", "stage seconds")
        h.observe(0.5, stage="build")
        h.observe(1.5, stage="build")
        h.observe(0.25, stage="solve")
        assert h.sum_by_label("stage") == {"build": 2.0, "solve": 0.25}
        assert h.count_by_label("stage") == {"build": 2, "solve": 1}
        assert h.total_sum() == 2.25
        assert h.total_count() == 3

    def test_registry_idempotent_and_typed(self):
        reg = MetricsRegistry()
        c1 = reg.counter("x", "help")
        assert reg.counter("x") is c1
        with pytest.raises(TypeError):
            reg.gauge("x")
        assert "x" in reg

    def test_prometheus_rendering(self):
        reg = MetricsRegistry()
        reg.counter("points_total", "Points solved").inc(4, mode="serial")
        reg.histogram("stage", "Stage time").observe(0.5, stage="build")
        text = reg.to_prometheus()
        assert '# TYPE repro_points_total counter' in text
        assert 'repro_points_total{mode="serial"} 4' in text
        assert 'repro_stage_seconds_sum{stage="build"} 0.5' in text
        assert 'repro_stage_seconds_count{stage="build"} 1' in text


class TestHistogramBuckets:
    """Bucketed histograms: rendering, monotonicity, merge, quantiles."""

    BUCKETS = (0.1, 0.5, 1.0, 5.0)

    def _hist(self):
        h = Histogram("latency", "query wall time", buckets=self.BUCKETS)
        for value in (0.05, 0.3, 0.3, 0.7, 2.0):
            h.observe(value, outcome="miss")
        h.observe(0.01, outcome="hit")
        return h

    def test_bucket_rendering_labels_and_le(self):
        lines = self._hist().to_prometheus("repro_")
        text = "\n".join(lines)
        assert "# TYPE repro_latency_seconds histogram" in text
        # Every bucket line carries both the series labels and le=.
        assert 'repro_latency_seconds_bucket{outcome="miss",le="0.1"} 1' in text
        assert 'repro_latency_seconds_bucket{outcome="miss",le="0.5"} 3' in text
        assert 'repro_latency_seconds_bucket{outcome="miss",le="1"} 4' in text
        assert 'repro_latency_seconds_bucket{outcome="miss",le="5"} 5' in text
        assert 'repro_latency_seconds_bucket{outcome="miss",le="+Inf"} 5' in text
        assert 'repro_latency_seconds_bucket{outcome="hit",le="0.1"} 1' in text
        assert 'repro_latency_seconds_count{outcome="miss"} 5' in text

    def test_bucket_counts_monotone_and_closed_by_inf(self):
        h = self._hist()
        for labels, series in h.series().items():
            cumulative = series.cumulative()
            assert all(
                a <= b for a, b in zip(cumulative, cumulative[1:])
            ), f"non-monotone buckets for {labels}: {cumulative}"
            # +Inf bucket == observation count: nothing falls off the end.
            assert cumulative[-1] == series.count

    def test_buckets_must_ascend(self):
        with pytest.raises(ValueError):
            Histogram("bad", "x", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("bad", "x", buckets=(2.0, 1.0))

    def test_merge_adds_buckets_and_quantiles_follow(self):
        a = self._hist()
        b = self._hist()
        a.merge(b)
        assert a.total_count() == 12
        for _labels, series in a.series().items():
            assert series.cumulative()[-1] == series.count
        # Quantile interpolates the merged distribution, inside range.
        p50 = a.quantile(0.5)
        assert p50 is not None and 0.1 <= p50 <= 1.0
        assert a.quantile(0.0) is not None
        mismatched = Histogram("latency", "x", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            a.merge(mismatched)

    def test_wire_round_trip_preserves_rendering(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency", "wall", buckets=self.BUCKETS)
        h.observe(0.3, outcome="miss")
        reg.counter("requests_total", "reqs").inc(2, kind="query")
        clone = MetricsRegistry.from_wire(reg.to_wire())
        assert clone.to_prometheus() == reg.to_prometheus()
        # Merging the clone doubles every count exactly.
        reg.merge(clone)
        assert reg.histogram("latency").total_count() == 2
        assert reg.counter("requests_total").total() == 4


class TestLogs:
    def test_json_line_formatter_includes_extras(self):
        record = logging.LogRecord(
            "repro.test", logging.WARNING, __file__, 1, "task quarantined", (), None
        )
        record.key = "stacked/4L"
        record.attempts = 3
        payload = json.loads(JsonLineFormatter().format(record))
        assert payload["level"] == "warning"
        assert payload["msg"] == "task quarantined"
        assert payload["key"] == "stacked/4L"
        assert payload["attempts"] == 3

    def test_configure_idempotent(self):
        logger = logging.getLogger("repro")
        before = list(logger.handlers)
        configure_logging("info")
        configure_logging("debug")
        ours = [h for h in logger.handlers if getattr(h, "_repro_obs", False)]
        assert len(ours) == 1
        assert logger.level == logging.DEBUG
        # restore: drop our handler, keep whatever was there before
        logger.handlers = before
        logger.setLevel(logging.NOTSET)

    def test_get_logger_namespacing(self):
        logger = get_logger("repro.runtime.engine")
        assert logger.name == "repro.runtime.engine"
        assert get_logger("solver").name == "repro.solver"


def _make_spans(tracer):
    with tracer.span("sweep", run_fingerprint="fp", n_points=2):
        with tracer.span("group", key="k1", n_points=2):
            with tracer.span("build"):
                pass
            with tracer.span("factorize"):
                pass
            with tracer.span("solve"):
                tracer.record("rung", 0.01, rung="lu", count=2)
            tracer.record("contracts", 0.002, violations={"record": 1})
    return tracer.drain()


class TestExport:
    def test_flush_load_header_round_trip(self, tracer, tmp_path):
        tracer.set_trace_id("feedc0de")
        spans = _make_spans(tracer)
        path = flush_spans(spans, "feedc0de", trace_dir=tmp_path, trace_id="feedc0de")
        assert path == trace_path("feedc0de", tmp_path)
        loaded = load_trace(path)
        assert {s.span_id for s in loaded} == {s.span_id for s in spans}
        header = load_trace_header(path)
        assert header["run_fingerprint"] == "feedc0de"

    def test_reflush_dedupes_by_span_id(self, tracer, tmp_path):
        spans = _make_spans(tracer)
        flush_spans(spans, "fp", trace_dir=tmp_path)
        # Re-flushing an overlapping subset (a resume) must not duplicate.
        flush_spans(spans[:3], "fp", trace_dir=tmp_path)
        loaded = load_trace(trace_path("fp", tmp_path))
        assert len(loaded) == len(spans)
        assert len({s.span_id for s in loaded}) == len(spans)

    def test_flush_empty_returns_none(self, tmp_path):
        assert flush_spans([], "fp", trace_dir=tmp_path) is None

    def test_chrome_trace(self, tracer, tmp_path):
        spans = _make_spans(tracer)
        events = chrome_trace_events(spans)
        assert all(e["ph"] == "X" for e in events)
        assert {e["name"] for e in events} >= {"sweep", "group", "build"}
        out = tmp_path / "chrome.json"
        write_chrome_trace(spans, out, run_fingerprint="fp")
        doc = json.loads(out.read_text())
        assert doc["otherData"]["run_fingerprint"] == "fp"
        for key in ("name", "cat", "ph", "ts", "dur", "pid", "tid", "args"):
            assert key in doc["traceEvents"][0]
        assert min(e["ts"] for e in doc["traceEvents"]) < 1e6  # normalised

    def test_write_prometheus(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("x_total", "x").inc()
        out = write_prometheus(reg, tmp_path / "metrics.prom")
        assert "repro_x_total 1" in out.read_text()


class TestProfile:
    def test_tree_and_aggregation(self, tracer):
        spans = _make_spans(tracer)
        roots = build_tree(spans)
        assert len(roots) == 1 and roots[0].span.name == "sweep"
        names = [n.span.name for n in roots[0].walk()]
        assert names[0] == "sweep" and "rung" in names
        stats = {s.name: s for s in aggregate_by_name(spans)}
        assert stats["group"].count == 1
        # Self time excludes children.
        group_node = roots[0].children[0]
        assert group_node.self_s <= group_node.span.duration_s

    def test_stage_totals_and_attribution(self, tracer):
        spans = _make_spans(tracer)
        totals = stage_totals_from_spans(spans)
        assert totals["contracts"] == pytest.approx(0.002)
        assert totals["build"] > 0
        rollup = attribution(spans)
        assert rollup.escalations == {"lu": 2}  # count attr honoured
        assert rollup.contract_violations == {"record": 1}
        assert rollup.retries == 0

    def test_slowest_groups_and_retries(self, tracer):
        spans = _make_spans(tracer)  # first attempt
        with tracer.span("group", key="k1", n_points=2):
            pass  # retry of the same key
        spans += tracer.drain()
        (profile,) = slowest_groups(spans, top=5)
        assert profile.key == "k1"
        assert profile.retries == 1
        assert profile.escalations == {"lu": 2}

    def test_render_profile_mentions_everything(self, tracer):
        text = render_profile(_make_spans(tracer), run_fingerprint="fp")
        assert "time by span name" in text
        assert "stage totals from spans" in text
        assert "slowest topology groups" in text
        assert "lu: 2" in text
        assert "record: 1" in text
