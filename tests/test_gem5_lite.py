"""Gem5-lite statistical activity generator (extension)."""

import numpy as np
import pytest

from repro.config.stackups import ProcessorSpec
from repro.workload.gem5_lite import (
    GEM5_WORKLOADS,
    MicroWorkload,
    gem5_sample_suite,
    simulate_activity_windows,
)


class TestPipelineModel:
    def test_cpi_floor_is_one(self):
        w = GEM5_WORKLOADS["blackscholes"]
        assert w.cpi(0.0) >= 1.0

    def test_misses_raise_cpi(self):
        w = GEM5_WORKLOADS["canneal"]
        assert w.cpi(w.miss_rate_high) > w.cpi(w.miss_rate_low)

    def test_activity_is_inverse_cpi(self):
        w = GEM5_WORKLOADS["ferret"]
        assert w.activity(0.01) == pytest.approx(1.0 / w.cpi(0.01))

    def test_activity_in_unit_range(self):
        for w in GEM5_WORKLOADS.values():
            for miss in (w.miss_rate_low, w.miss_rate_high):
                assert 0.0 < w.activity(miss) <= 1.0

    def test_miss_rate_ordering_enforced(self):
        with pytest.raises(ValueError):
            MicroWorkload("bad", 0.3, 0.1, miss_rate_low=0.05, miss_rate_high=0.01)


class TestWindowSimulation:
    def test_reproducible(self):
        w = GEM5_WORKLOADS["x264"]
        a = simulate_activity_windows(w, 200, rng=5)
        b = simulate_activity_windows(w, 200, rng=5)
        assert np.array_equal(a, b)

    def test_output_range(self):
        for w in GEM5_WORKLOADS.values():
            acts = simulate_activity_windows(w, 300, rng=2)
            assert acts.min() >= 0.0
            assert acts.max() <= 1.0

    def test_phases_create_bimodal_spread(self):
        """Memory-bound phases pull activity well below compute-bound."""
        w = GEM5_WORKLOADS["canneal"]
        acts = simulate_activity_windows(w, 1000, rng=3)
        spread = acts.max() - acts.min()
        assert spread > 0.2

    def test_compute_bound_app_is_stable(self):
        stable = simulate_activity_windows(GEM5_WORKLOADS["blackscholes"], 1000, rng=4)
        bursty = simulate_activity_windows(GEM5_WORKLOADS["x264"], 1000, rng=4)
        assert stable.std() < bursty.std()

    def test_rejects_nonpositive_windows(self):
        with pytest.raises(ValueError):
            simulate_activity_windows(GEM5_WORKLOADS["vips"], 0)


class TestSuite:
    @pytest.fixture(scope="class")
    def suite(self):
        return gem5_sample_suite(ProcessorSpec(), n_windows=600, rng=9)

    def test_all_apps(self, suite):
        assert set(suite) == set(GEM5_WORKLOADS)

    def test_emergent_imbalance_ordering(self, suite):
        """The qualitative Fig. 7 structure *emerges* from the pipeline
        parameters: blackscholes is the steadiest application and the
        bursty apps exceed ~60% max imbalance."""
        imbalances = {name: s.max_imbalance for name, s in suite.items()}
        assert imbalances["blackscholes"] == min(imbalances.values())
        assert max(imbalances.values()) > 0.6

    def test_powers_within_processor_envelope(self, suite):
        proc = ProcessorSpec()
        for s in suite.values():
            assert s.powers.min() >= proc.leakage_power - 1e-9
            assert s.powers.max() <= proc.peak_power + 1e-9

    def test_drop_in_compatibility_with_scheduler(self, suite):
        from repro.workload.sampling import schedule_stack

        out = schedule_stack(suite, ["canneal"] * 4, rng=0)
        assert len(out) == 3
