"""Transient engine: companion models vs analytic RC/RL solutions."""

import numpy as np
import pytest

from repro.grid.dynamic import Capacitor, Inductor, TransientEngine
from repro.grid.netlist import Circuit


def rc_charging(r=100.0, c=1e-9, v=1.0, dt=1e-9, steps=600):
    """1 V source charging C through R; returns (engine, trace)."""
    circuit = Circuit()
    circuit.set_ground("gnd")
    circuit.add_voltage_source("in", "gnd", v)
    circuit.add_resistor("in", "out", r)
    engine = TransientEngine(
        circuit, capacitors=[Capacitor("out", "gnd", c)], dt=dt
    )
    trace = engine.run(steps=steps, probes={"out": "out"})
    return engine, trace


class TestRCCharging:
    def test_asymptote(self):
        _, trace = rc_charging(steps=1500)  # 15 tau
        assert trace.probe("out")[-1] == pytest.approx(1.0, abs=1e-3)

    def test_monotone_rise(self):
        _, trace = rc_charging()
        out = trace.probe("out")
        assert np.all(np.diff(out) >= -1e-12)

    def test_time_constant(self):
        """v(tau) = 1 - 1/e for RC charging (within BE discretisation)."""
        r, c, dt = 100.0, 1e-9, 5e-10
        _, trace = rc_charging(r=r, c=c, dt=dt, steps=1000)
        tau = r * c
        idx = int(round(tau / dt))
        expected = 1.0 - np.exp(-1.0)
        assert trace.probe("out")[idx] == pytest.approx(expected, abs=0.02)

    def test_initial_condition_respected(self):
        circuit = Circuit()
        circuit.set_ground("gnd")
        circuit.add_voltage_source("in", "gnd", 1.0)
        circuit.add_resistor("in", "out", 100.0)
        engine = TransientEngine(
            circuit, capacitors=[Capacitor("out", "gnd", 1e-9)], dt=1e-10
        )
        trace = engine.run(
            steps=5, probes={"out": "out"},
            initial_cap_voltages=np.array([1.0]),
        )
        # Pre-charged to the final value: nothing moves.
        assert np.allclose(trace.probe("out"), 1.0, atol=1e-6)


class TestRLBehaviour:
    def test_inductor_final_current_is_resistive_limit(self):
        """V across R-L settles to V/R through the inductor."""
        circuit = Circuit()
        circuit.set_ground("gnd")
        circuit.add_voltage_source("in", "gnd", 2.0)
        circuit.add_resistor("in", "mid", 4.0, tag="r")
        engine = TransientEngine(
            circuit,
            capacitors=[Capacitor("mid", "gnd", 1e-12)],  # tiny, keeps node tied
            inductors=[Inductor("mid", "gnd", 1e-9)],
            dt=1e-10,
        )
        trace = engine.run(steps=5000, probes={"mid": "mid"})
        # Inductor is a DC short: the mid node ends at ~0 V and the
        # branch carries 0.5 A.
        assert trace.probe("mid")[-1] == pytest.approx(0.0, abs=5e-3)

    def test_rlc_rings(self):
        """Series RLC with low damping overshoots (undershoot exists)."""
        circuit = Circuit()
        circuit.set_ground("gnd")
        circuit.add_voltage_source("in", "gnd", 1.0)
        circuit.add_resistor("in", "a", 0.5)
        engine = TransientEngine(
            circuit,
            capacitors=[Capacitor("b", "gnd", 1e-9)],
            inductors=[Inductor("a", "b", 10e-9)],
            dt=2e-10,
        )
        trace = engine.run(steps=4000, probes={"b": "b"})
        out = trace.probe("b")
        assert out.max() > 1.05  # rings above the supply
        assert out[-1] == pytest.approx(1.0, abs=0.02)


class TestValidation:
    def test_needs_storage_elements(self):
        circuit = Circuit()
        circuit.set_ground("gnd")
        circuit.add_resistor("a", "gnd", 1.0)
        with pytest.raises(ValueError, match="storage"):
            TransientEngine(circuit, capacitors=[])

    def test_rejects_bad_load_shape(self):
        circuit = Circuit()
        circuit.set_ground("gnd")
        circuit.add_voltage_source("in", "gnd", 1.0)
        circuit.add_resistor("in", "out", 1.0)
        circuit.add_current_source("out", "gnd", 0.1, tag="load")
        engine = TransientEngine(
            circuit, capacitors=[Capacitor("out", "gnd", 1e-9)], dt=1e-10
        )
        with pytest.raises(ValueError, match="shape"):
            engine.run(steps=2, load_currents=lambda t: np.zeros(5))

    def test_rejects_nonpositive_steps(self):
        circuit = Circuit()
        circuit.set_ground("gnd")
        circuit.add_voltage_source("in", "gnd", 1.0)
        circuit.add_resistor("in", "out", 1.0)
        engine = TransientEngine(
            circuit, capacitors=[Capacitor("out", "gnd", 1e-9)], dt=1e-10
        )
        with pytest.raises(ValueError):
            engine.run(steps=0)

    def test_worst_droop_helper(self):
        _, trace = rc_charging(steps=100)
        droop = trace.worst_droop("out", reference=1.0)
        assert droop > 0.9  # starts at 0 V
