"""Regular PDN with full-power SC conversion (the Fig. 8 baseline)."""

import numpy as np
import pytest

from repro.config.stackups import StackConfig
from repro.core.experiments.fig8 import regular_sc_efficiency
from repro.pdn.regular_sc3d import RegularSCPDN3D
from repro.workload.imbalance import interleaved_layer_activities

GRID = 8


@pytest.fixture(scope="module")
def pdn():
    return RegularSCPDN3D(StackConfig(n_layers=2, grid_nodes=GRID), converters_per_core=5)


@pytest.fixture(scope="module")
def result(pdn):
    return pdn.solve()


class TestElectrical:
    def test_distribution_rail_at_double_vdd(self, pdn, result):
        mid = GRID // 2
        v_dist = result.solution.voltage_by_id(
            np.array([pdn.dist_ids[0][mid, mid]])
        )[0]
        assert v_dist == pytest.approx(2.0, abs=0.1)

    def test_regulated_rail_near_vdd(self, pdn, result):
        mid = GRID // 2
        v = result.solution.voltage_by_id(np.array([pdn.vdd_ids[0][mid, mid]]))[0]
        assert v == pytest.approx(1.0, abs=0.1)

    def test_converters_carry_all_power(self, pdn, result):
        """Sum of converter output currents equals the total load."""
        total_conv = result.converter_currents().sum()
        total_load = result.solution.isource_values().sum()
        assert total_conv == pytest.approx(total_load, rel=0.02)

    def test_offchip_current_is_halved_by_conversion(self, pdn, result, small_stack):
        """2:1 conversion: the supply sees ~half the load current."""
        supplied = result.solution.vsource_currents("supply")[0]
        total_load = result.solution.isource_values().sum()
        assert supplied == pytest.approx(total_load / 2, rel=0.2)

    def test_power_balance(self, result):
        assert result.solution.power_balance_error() < 1e-6

    def test_rating_with_enough_converters(self, result):
        assert result.converters_within_rating()

    def test_too_few_converters_violate_rating(self):
        pdn = RegularSCPDN3D(
            StackConfig(n_layers=2, grid_nodes=GRID), converters_per_core=2
        )
        assert not pdn.solve().converters_within_rating()


class TestAgainstAnalyticShortcut:
    def test_efficiency_matches_fig8_line(self):
        """The Fig. 8 driver's closed-form regular+SC efficiency agrees
        with the full grid solve within ~1 point."""
        pdn = RegularSCPDN3D(
            StackConfig(n_layers=4, grid_nodes=GRID), converters_per_core=5
        )
        for imbalance in (0.1, 0.5, 1.0):
            grid = pdn.solve(
                layer_activities=interleaved_layer_activities(4, imbalance)
            ).efficiency()
            analytic = regular_sc_efficiency(imbalance, n_layers=4)
            assert grid == pytest.approx(analytic, abs=0.012)

    def test_efficiency_flat_with_imbalance(self):
        pdn = RegularSCPDN3D(
            StackConfig(n_layers=2, grid_nodes=GRID), converters_per_core=5
        )
        effs = [
            pdn.solve(
                layer_activities=interleaved_layer_activities(2, i)
            ).efficiency()
            for i in (0.1, 0.9)
        ]
        assert abs(effs[0] - effs[1]) < 0.05

    def test_vs_beats_regular_sc_on_the_grid(self):
        """The paper's Fig. 8 conclusion, now entirely grid-solved."""
        from repro.pdn.stacked3d import StackedPDN3D

        stack = StackConfig(n_layers=2, grid_nodes=GRID)
        acts = interleaved_layer_activities(2, 0.3)
        reg_sc = RegularSCPDN3D(stack, converters_per_core=5).solve(
            layer_activities=acts
        )
        vs = StackedPDN3D(stack, converters_per_core=2).solve(layer_activities=acts)
        assert vs.efficiency() > reg_sc.efficiency()
