"""Design-space explorer: dominance, frontier, scoring."""

import pytest

from repro.core.explorer import DesignPoint, DesignSpaceExplorer, ExplorationResult


def point(**overrides):
    base = dict(
        arrangement="regular",
        tsv_topology="Few",
        converters_per_core=0,
        power_pad_fraction=0.25,
        ir_drop=0.05,
        efficiency=0.95,
        c4_lifetime=1.0,
        tsv_lifetime=1.0,
        area_overhead=0.05,
    )
    base.update(overrides)
    return DesignPoint(**base)


class TestDominance:
    def test_identical_points_do_not_dominate(self):
        assert not point().dominates(point())

    def test_strictly_better_dominates(self):
        better = point(ir_drop=0.02)
        assert better.dominates(point())
        assert not point().dominates(better)

    def test_tradeoff_is_incomparable(self):
        low_noise = point(ir_drop=0.02, area_overhead=0.2)
        low_area = point(ir_drop=0.05, area_overhead=0.01)
        assert not low_noise.dominates(low_area)
        assert not low_area.dominates(low_noise)

    def test_infeasible_never_dominates(self):
        infeasible = point(ir_drop=None, efficiency=None)
        assert not infeasible.dominates(point())
        assert not point().dominates(infeasible)
        assert not infeasible.feasible

    def test_pad_budget_is_an_objective(self):
        fewer_pads = point(power_pad_fraction=0.25)
        more_pads = point(power_pad_fraction=0.5)
        assert fewer_pads.dominates(more_pads)


class TestExplorationResult:
    def make_result(self):
        points = [
            point(ir_drop=0.02, area_overhead=0.2, tsv_topology="Dense"),
            point(ir_drop=0.06, area_overhead=0.01, tsv_topology="Few"),
            point(ir_drop=0.07, area_overhead=0.3, tsv_topology="Sparse"),  # dominated
            point(ir_drop=None, efficiency=None, arrangement="voltage-stacked",
                  converters_per_core=2),
        ]
        return ExplorationResult(points=points, imbalance=0.5, n_layers=4)

    def test_frontier_excludes_dominated(self):
        frontier = self.make_result().pareto_frontier
        topologies = {p.tsv_topology for p in frontier}
        assert topologies == {"Dense", "Few"}

    def test_feasible_points(self):
        assert len(self.make_result().feasible_points) == 3

    def test_best_by(self):
        result = self.make_result()
        assert result.best_by("noise").tsv_topology == "Dense"
        assert result.best_by("area").tsv_topology == "Few"

    def test_best_by_unknown_objective(self):
        with pytest.raises(ValueError, match="objective"):
            self.make_result().best_by("sparkle")

    def test_format_renders(self):
        text = self.make_result().format()
        assert "Pareto frontier" in text


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def exploration(self):
        explorer = DesignSpaceExplorer(n_layers=4, imbalance=0.5, grid_nodes=8)
        return explorer.explore(
            topologies=("Dense", "Few"),
            pad_fractions=(0.25,),
            converter_counts=(2, 8),
        )

    def test_point_count(self, exploration):
        assert len(exploration.points) == 2 + 4  # 2 regular + 4 stacked

    def test_two_converter_points_infeasible_at_half_imbalance(self, exploration):
        infeasible = [p for p in exploration.points if not p.feasible]
        assert all(p.converters_per_core == 2 for p in infeasible)

    def test_vs_wins_c4_lifetime(self, exploration):
        """Charge recycling cuts pad currents ~n_layers-fold."""
        best = exploration.best_by("c4_lifetime")
        assert best.arrangement == "voltage-stacked"

    def test_frontier_nonempty(self, exploration):
        assert exploration.pareto_frontier

    def test_rejects_bad_imbalance(self):
        with pytest.raises(ValueError):
            DesignSpaceExplorer(imbalance=1.5)
