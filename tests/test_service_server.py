"""Service e2e: stampede, shed, breaker degradation, deadlines, identity.

Each test boots a real :class:`~repro.service.ExplorationService` on a
background thread (ephemeral port) and talks to it over TCP with
:class:`~repro.service.ServiceClient` — the full wire path, not method
calls.  Solve backends are injected stubs except for the bit-identity
test, which runs the real engine.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.runtime import PDNSpec
from repro.service import (
    ServiceClient,
    ServiceConfig,
    serve_in_background,
)

from tests.conftest import TEST_GRID


def _spec(n_layers: int = 2, grid: int = TEST_GRID) -> PDNSpec:
    return PDNSpec.regular(n_layers, grid_nodes=grid)


def _config(tmp_path, **overrides) -> ServiceConfig:
    settings = dict(
        bind="127.0.0.1:0",
        cache_dir=str(tmp_path / "svc-cache"),
        bench_name=None,
    )
    settings.update(overrides)
    return ServiceConfig(**settings)


@pytest.fixture
def serve(tmp_path):
    """Factory fixture: boot a service, guarantee teardown."""
    handles = []

    def _serve(solve_fn=None, **overrides):
        handle = serve_in_background(
            config=_config(tmp_path, **overrides), solve_fn=solve_fn
        )
        handles.append(handle)
        return handle

    yield _serve
    for handle in handles:
        handle.stop(drain=False)


class _CountingSolver:
    """A stub backend: counts calls, optionally slow or failing."""

    def __init__(self, delay_s: float = 0.0, payload=None):
        self.delay_s = delay_s
        self.payload = payload or {"efficiency": 0.9, "max_ir_drop_v": 0.01}
        self.calls = 0
        self.fail = False
        self.fail_above_grid = None
        self._lock = threading.Lock()

    def __call__(self, spec, activities, deadline):
        with self._lock:
            self.calls += 1
        if self.delay_s:
            time.sleep(self.delay_s)
        if self.fail:
            raise RuntimeError("injected backend failure")
        if (
            self.fail_above_grid is not None
            and spec.grid_nodes > self.fail_above_grid
        ):
            raise RuntimeError("injected fine-grid failure")
        return dict(self.payload, grid=spec.grid_nodes)


# ----------------------------------------------------------------------
# caching + single-flight
# ----------------------------------------------------------------------

class TestCachingAndCoalescing:
    def test_repeat_query_is_a_cache_hit(self, serve):
        solver = _CountingSolver()
        handle = serve(solve_fn=solver)
        with ServiceClient(handle.address) as client:
            first = client.query(_spec())
            second = client.query(_spec())
            metrics = client.metrics()
        assert first["status"] == "ok" and not first["cached"]
        assert second["cached"] and second["result"] == first["result"]
        assert solver.calls == 1
        counters = metrics["counters"]
        assert counters["cache"]["hits"] == 1
        assert counters["cache"]["misses"] == 1
        assert "service_cache_total" in metrics["prometheus"]

    def test_cache_survives_server_restart(self, serve, tmp_path):
        solver = _CountingSolver()
        handle = serve(solve_fn=solver)
        with ServiceClient(handle.address) as client:
            client.query(_spec())
        handle.stop(drain=True)
        handle2 = serve(solve_fn=solver)
        with ServiceClient(handle2.address) as client:
            again = client.query(_spec())
        assert again["cached"]
        assert solver.calls == 1

    def test_stampede_coalesces_to_one_solve(self, serve):
        """32 concurrent identical queries -> exactly 1 backend solve."""
        solver = _CountingSolver(delay_s=0.3)
        handle = serve(solve_fn=solver)

        def one_query(_):
            with ServiceClient(handle.address) as client:
                return client.query(_spec(), deadline_s=30.0)

        with ThreadPoolExecutor(max_workers=32) as pool:
            responses = list(pool.map(one_query, range(32)))

        assert all(r["status"] == "ok" for r in responses)
        assert solver.calls == 1
        assert sum(bool(r.get("coalesced")) for r in responses) >= 1
        # Everyone got the same numbers.
        results = {tuple(sorted(r["result"].items())) for r in responses}
        assert len(results) == 1

    def test_distinct_specs_are_distinct_solves(self, serve):
        solver = _CountingSolver()
        handle = serve(solve_fn=solver)
        with ServiceClient(handle.address) as client:
            client.query(_spec(2))
            client.query(_spec(3))
        assert solver.calls == 2


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------

class TestLoadShedding:
    def test_overflow_sheds_typed_and_server_stays_live(self, serve):
        solver = _CountingSolver(delay_s=0.5)
        handle = serve(solve_fn=solver, max_queue=1)

        def one_query(n_layers):
            with ServiceClient(handle.address) as client:
                return client.query(_spec(n_layers), deadline_s=30.0)

        # Distinct specs so nothing coalesces: 1 solving + 1 queued
        # + N shed.
        with ThreadPoolExecutor(max_workers=8) as pool:
            responses = list(pool.map(one_query, range(2, 10)))

        shed = [r for r in responses if r["status"] == "overloaded"]
        served = [r for r in responses if r["status"] == "ok"]
        assert shed, "expected at least one typed shed"
        for response in shed:
            assert response["code"] == 429
            assert response["error_type"] == "ServiceOverloadError"
            assert response["retry_after_s"] > 0
        assert served, "server must keep answering under overload"
        # The server is still healthy afterwards.
        with ServiceClient(handle.address) as client:
            assert client.health()["status"] == "ok"
            follow_up = client.query(_spec(20))
            assert follow_up["status"] == "ok"
            counters = client.metrics()["counters"]
        assert counters["admission"]["shed"] == len(shed)


# ----------------------------------------------------------------------
# circuit breaker + degradation
# ----------------------------------------------------------------------

class TestBreakerDegradation:
    def test_failures_open_breaker_then_coarse_grid_degrades(self, serve):
        solver = _CountingSolver()
        solver.fail_above_grid = 6  # coarse solves succeed, fine ones fail
        handle = serve(
            solve_fn=solver,
            breaker_threshold=2,
            breaker_cooldown_s=60.0,
            coarse_grid=6,
        )
        with ServiceClient(handle.address) as client:
            # Two failing solves (distinct specs dodge the single-flight
            # and cache paths) open the breaker...
            for n_layers in (2, 3):
                response = client.query(_spec(n_layers, grid=12))
                assert response["status"] == "solve-error"
                assert response["code"] == 500
            assert client.health()["breaker"] == "open"
            # ...after which queries come back DEGRADED, not failed:
            response = client.query(_spec(4, grid=12))
            assert response["status"] == "ok"
            assert response["degraded"] is True
            assert response["degraded_mode"] == "coarse-grid"
            assert response["result"]["grid"] == 6
            # Readiness says degraded-only; liveness stays ok.
            assert client.health()["status"] == "ok"
            assert "breaker open" in " ".join(client.ready()["reasons"])

    def test_breaker_open_serves_stale_cache(self, serve):
        solver = _CountingSolver()
        handle = serve(
            solve_fn=solver,
            breaker_threshold=1,
            breaker_cooldown_s=60.0,
            cache_ttl_s=0.05,
            coarse_grid=2,  # coarse re-solve impossible at TEST_GRID=2
        )
        spec = _spec(2, grid=2)
        with ServiceClient(handle.address) as client:
            fresh = client.query(spec)
            assert fresh["status"] == "ok"
            time.sleep(0.08)  # entry is now TTL-stale
            solver.fail = True
            opened = client.query(_spec(3, grid=2))  # opens the breaker
            assert opened["status"] == "solve-error"
            stale = client.query(spec)
        assert stale["status"] == "ok"
        assert stale["degraded"] is True
        assert stale["degraded_mode"] == "stale-cache"
        assert stale["stale"] is True
        assert stale["result"] == fresh["result"]

    def test_breaker_open_without_fallback_is_typed_503(self, serve):
        solver = _CountingSolver()
        solver.fail = True
        handle = serve(
            solve_fn=solver,
            breaker_threshold=1,
            breaker_cooldown_s=60.0,
        )
        with ServiceClient(handle.address) as client:
            client.query(_spec(2))  # opens the breaker
            response = client.query(_spec(3))
        assert response["status"] == "unavailable"
        assert response["code"] == 503
        assert response["error_type"] == "CircuitOpenError"
        assert response["retry_after_s"] > 0

    def test_half_open_probe_closes_breaker_on_recovery(self, serve):
        solver = _CountingSolver()
        solver.fail = True
        handle = serve(
            solve_fn=solver,
            breaker_threshold=1,
            breaker_cooldown_s=0.15,
        )
        with ServiceClient(handle.address) as client:
            client.query(_spec(2))
            assert client.health()["breaker"] == "open"
            solver.fail = False  # backend recovers
            time.sleep(0.2)  # cooldown elapses -> half-open
            probe = client.query(_spec(3))
            assert probe["status"] == "ok" and not probe.get("degraded")
            assert client.health()["breaker"] == "closed"
            counters = client.metrics()["counters"]
        transitions = counters["breaker"]["transitions"]
        assert transitions["open"] == 1
        assert transitions["half-open"] == 1
        assert transitions["closed"] == 1


# ----------------------------------------------------------------------
# deadlines
# ----------------------------------------------------------------------

class TestDeadlines:
    def test_deadline_exceeded_mid_solve_is_typed_504(self, serve):
        solver = _CountingSolver(delay_s=0.6)
        handle = serve(solve_fn=solver)
        with ServiceClient(handle.address) as client:
            late = client.query(_spec(), deadline_s=0.15)
            assert late["status"] == "deadline"
            assert late["code"] == 504
            assert late["error_type"] == "DeadlineExceededError"
            # The server is alive and the orphaned solve still completes
            # and populates the cache: the retry is a hit.
            assert client.health()["status"] == "ok"
            for _ in range(50):
                retry = client.query(_spec(), deadline_s=5.0)
                if retry.get("cached"):
                    break
                time.sleep(0.05)
            assert retry["status"] == "ok" and retry["cached"]
        assert solver.calls == 1

    def test_deadline_spent_in_queue_is_typed_504(self, serve):
        solver = _CountingSolver(delay_s=0.4)
        handle = serve(solve_fn=solver, max_queue=4)

        def one_query(n_layers, deadline_s):
            with ServiceClient(handle.address) as client:
                return client.query(_spec(n_layers), deadline_s=deadline_s)

        with ThreadPoolExecutor(max_workers=3) as pool:
            blocker = pool.submit(one_query, 2, 30.0)
            time.sleep(0.05)  # the blocker is now solving
            starved = pool.submit(one_query, 3, 0.1).result()
            assert blocker.result()["status"] == "ok"
        assert starved["status"] == "deadline"
        assert starved["code"] == 504
        # The starved query never reached the backend.
        assert solver.calls == 1

    def test_server_default_deadline_applies(self, serve):
        solver = _CountingSolver(delay_s=0.5)
        handle = serve(solve_fn=solver, default_deadline_s=0.1)
        with ServiceClient(handle.address) as client:
            response = client.query(_spec())
        assert response["status"] == "deadline"


# ----------------------------------------------------------------------
# numerical identity with the direct engine path
# ----------------------------------------------------------------------

class TestBitIdentity:
    def test_service_answers_match_direct_engine_run(self, serve):
        """Served results == SweepEngine results, to the last bit."""
        from repro.runtime import SweepEngine, SweepPoint
        from repro.service.server import extract_summary

        spec = _spec(2)
        activities = (0.6, 1.0)
        direct = SweepEngine().run(
            [SweepPoint(spec=spec, layer_activities=activities)],
            extract=extract_summary,
        ).values[0]

        handle = serve()  # real engine-backed executor
        with ServiceClient(handle.address, timeout_s=300.0) as client:
            solved = client.query(spec, activities=list(activities))
            cached = client.query(spec, activities=list(activities))
        assert solved["status"] == "ok" and not solved["cached"]
        assert cached["cached"]
        for key, direct_value in direct.items():
            if isinstance(direct_value, float):
                assert solved["result"][key] == pytest.approx(
                    direct_value, abs=1e-12, rel=0
                ), key
                assert cached["result"][key] == solved["result"][key], key
            else:
                assert solved["result"][key] == direct_value, key


# ----------------------------------------------------------------------
# protocol robustness + shutdown
# ----------------------------------------------------------------------

class TestProtocol:
    def test_malformed_requests_get_typed_400s(self, serve):
        handle = serve(solve_fn=_CountingSolver())
        with ServiceClient(handle.address) as client:
            garbage = client.request({"kind": "query", "spec": {"bogus": 1}})
            assert garbage["code"] == 400
            assert garbage["error_type"] == "ServiceProtocolError"
            unknown = client.request({"kind": "dance"})
            assert unknown["code"] == 400
            mismatch = client.request(
                {
                    "kind": "query",
                    "spec": _spec(4).to_dict(),
                    "activities": [1.0],
                }
            )
            assert mismatch["code"] == 400
            assert "4 layer(s)" in mismatch["error"]
            # The connection survived all three.
            assert client.health()["status"] == "ok"

    def test_request_id_echo(self, serve):
        handle = serve(solve_fn=_CountingSolver())
        with ServiceClient(handle.address) as client:
            response = client.query(_spec(), request_id="req-7")
        assert response["id"] == "req-7"

    def test_clean_shutdown_drains_inflight_queries(self, serve):
        solver = _CountingSolver(delay_s=0.4)
        handle = serve(solve_fn=solver)

        def slow_query():
            with ServiceClient(handle.address) as client:
                return client.query(_spec(), deadline_s=30.0)

        with ThreadPoolExecutor(max_workers=1) as pool:
            inflight = pool.submit(slow_query)
            time.sleep(0.1)  # the query is now solving
            with ServiceClient(handle.address) as client:
                assert client.shutdown(drain=True)["status"] == "draining"
            # The in-flight query still gets its real answer.
            response = inflight.result(timeout=10.0)
        assert response["status"] == "ok"
        assert solver.calls == 1
        handle.thread.join(timeout=10.0)
        assert not handle.thread.is_alive()

    def test_draining_server_rejects_new_queries(self, serve):
        solver = _CountingSolver(delay_s=0.5)
        handle = serve(solve_fn=solver)

        def slow_query():
            with ServiceClient(handle.address) as client:
                return client.query(_spec(2), deadline_s=30.0)

        with ThreadPoolExecutor(max_workers=1) as pool:
            pool.submit(slow_query)
            time.sleep(0.1)
            with ServiceClient(handle.address) as client:
                client.shutdown(drain=True)
                rejected = client.query(_spec(3))
        assert rejected["status"] == "unavailable"
        assert rejected["code"] == 503
