"""Power maps and floorplan rasterisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.stackups import StackConfig
from repro.floorplan.blocks import Rect
from repro.power.powermap import (
    PowerMap,
    layer_power_map,
    rasterize_blocks,
    uniform_power_map,
)

GRID = 8


@pytest.fixture(scope="module")
def stack():
    return StackConfig(n_layers=2, grid_nodes=GRID)


class TestPowerMap:
    def test_total_power(self):
        pm = uniform_power_map(10.0, 1e-3, 4)
        assert pm.total_power == pytest.approx(10.0)

    def test_currents(self):
        pm = uniform_power_map(8.0, 1e-3, 4)
        assert pm.currents(2.0).sum() == pytest.approx(4.0)

    def test_scaled(self):
        pm = uniform_power_map(10.0, 1e-3, 4).scaled(0.5)
        assert pm.total_power == pytest.approx(5.0)

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            uniform_power_map(1.0, 1e-3, 4).scaled(-1.0)

    def test_add(self):
        a = uniform_power_map(1.0, 1e-3, 4)
        b = uniform_power_map(2.0, 1e-3, 4)
        assert (a + b).total_power == pytest.approx(3.0)

    def test_add_mismatched_rejected(self):
        a = uniform_power_map(1.0, 1e-3, 4)
        b = uniform_power_map(1.0, 1e-3, 5)
        with pytest.raises(ValueError):
            a + b

    def test_power_density(self):
        pm = uniform_power_map(16.0, 2e-3, 4)
        expected = 16.0 / (2e-3) ** 2
        assert pm.power_density().sum() == pytest.approx(expected * 16 / 16 * 16)

    def test_rejects_negative_cells(self):
        with pytest.raises(ValueError):
            PowerMap(np.array([[-1.0]]), 1e-3)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            PowerMap(np.zeros((2, 3)), 1e-3)


class TestRasterize:
    def test_conserves_block_power(self):
        die = 1e-3
        rects = {"a": Rect(0, 0, die / 2, die), "b": Rect(die / 2, 0, die / 2, die)}
        powers = {"a": 3.0, "b": 1.0}
        pm = rasterize_blocks(rects, powers, die, 8)
        assert pm.total_power == pytest.approx(4.0)

    def test_spatial_assignment(self):
        die = 1e-3
        rects = {"left": Rect(0, 0, die / 2, die)}
        pm = rasterize_blocks(rects, {"left": 2.0}, die, 4)
        # All power in the left half of the grid.
        assert pm.cell_power[:, :2].sum() == pytest.approx(2.0)
        assert pm.cell_power[:, 2:].sum() == pytest.approx(0.0)

    def test_missing_rect_rejected(self):
        with pytest.raises(KeyError):
            rasterize_blocks({}, {"ghost": 1.0}, 1e-3, 4)

    def test_negative_power_rejected(self):
        rects = {"a": Rect(0, 0, 1e-3, 1e-3)}
        with pytest.raises(ValueError):
            rasterize_blocks(rects, {"a": -1.0}, 1e-3, 4)

    @given(st.integers(min_value=2, max_value=12))
    @settings(max_examples=20, deadline=None)
    def test_power_conserved_at_any_resolution(self, grid):
        die = 1e-3
        rects = {
            "a": Rect(0.1e-3, 0.2e-3, 0.3e-3, 0.5e-3),
            "b": Rect(0.5e-3, 0.1e-3, 0.4e-3, 0.7e-3),
        }
        powers = {"a": 1.7, "b": 0.4}
        pm = rasterize_blocks(rects, powers, die, grid)
        assert pm.total_power == pytest.approx(2.1, rel=1e-9)


class TestLayerPowerMap:
    def test_peak_total(self, stack):
        pm = layer_power_map(stack, activity=1.0)
        assert pm.total_power == pytest.approx(stack.processor.peak_power, rel=1e-6)

    def test_idle_total(self, stack):
        pm = layer_power_map(stack, activity=0.0)
        assert pm.total_power == pytest.approx(stack.processor.leakage_power, rel=1e-6)

    def test_per_core_activities(self, stack):
        acts = np.zeros(stack.processor.core_count)
        acts[0] = 1.0
        pm = layer_power_map(stack, core_activities=acts)
        proc = stack.processor
        expected = proc.leakage_power + proc.dynamic_power / proc.core_count
        assert pm.total_power == pytest.approx(expected, rel=1e-6)

    def test_floorplanned_matches_uniform_total(self, stack):
        uniform = layer_power_map(stack, activity=0.7)
        detailed = layer_power_map(stack, activity=0.7, floorplanned=True)
        assert detailed.total_power == pytest.approx(uniform.total_power, rel=1e-6)

    def test_wrong_activity_shape_rejected(self, stack):
        with pytest.raises(ValueError):
            layer_power_map(stack, core_activities=np.ones(3))

    def test_activities_out_of_range_rejected(self, stack):
        bad = np.full(stack.processor.core_count, 1.5)
        with pytest.raises(ValueError):
            layer_power_map(stack, core_activities=bad)
