"""Netlist construction: nodes, elements, tags."""

import numpy as np
import pytest

from repro.grid.netlist import ISOURCE, RESISTOR, VSOURCE, Circuit


class TestNodes:
    def test_node_ids_are_stable(self):
        c = Circuit()
        a = c.node("a")
        assert c.node("a") == a

    def test_node_ids_increment(self):
        c = Circuit()
        assert c.node("a") == 0
        assert c.node("b") == 1

    def test_nodes_vectorised(self):
        c = Circuit()
        ids = c.nodes(["a", "b", "a"])
        assert list(ids) == [0, 1, 0]

    def test_has_node(self):
        c = Circuit()
        c.node("x")
        assert c.has_node("x")
        assert not c.has_node("y")

    def test_tuple_keys(self):
        c = Circuit()
        key = ("vdd", 0, 3, 4)
        assert c.node(key) == c.node(("vdd", 0, 3, 4))

    def test_ground_registration(self):
        c = Circuit()
        gid = c.set_ground("gnd")
        assert c.ground == gid


class TestElementConstruction:
    def test_add_resistor_returns_ref(self):
        c = Circuit()
        ref = c.add_resistor("a", "b", 2.0)
        assert ref.kind == RESISTOR
        assert ref.count == 1
        assert c.count(RESISTOR) == 1

    def test_resistor_rejects_nonpositive(self):
        c = Circuit()
        with pytest.raises(ValueError):
            c.add_resistor("a", "b", 0.0)

    def test_bulk_resistors(self):
        c = Circuit()
        ref = c.add_resistors(["a", "b"], ["b", "c"], [1.0, 2.0], tag="grid")
        assert ref.count == 2
        assert list(ref.indices) == [0, 1]

    def test_bulk_resistors_length_mismatch(self):
        c = Circuit()
        with pytest.raises(ValueError, match="equal lengths"):
            c.add_resistors(["a"], ["b", "c"], [1.0, 2.0])

    def test_bulk_accepts_resolved_ids(self):
        c = Circuit()
        ids = c.nodes(["a", "b", "c"])
        c.add_resistors(ids[:2], ids[1:], np.array([1.0, 1.0]))
        assert c.count(RESISTOR) == 2

    def test_resolved_ids_out_of_range_rejected(self):
        c = Circuit()
        c.node("a")
        with pytest.raises(ValueError, match="out of range"):
            c.add_resistors(np.array([5]), np.array([0]), [1.0])

    def test_converter_rejects_nonpositive_rseries(self):
        c = Circuit()
        with pytest.raises(ValueError):
            c.add_converter("t", "b", "m", r_series=-0.1)

    def test_tag_indices(self):
        c = Circuit()
        c.add_resistor("a", "b", 1.0, tag="x")
        c.add_resistor("b", "c", 1.0, tag="y")
        c.add_resistor("c", "d", 1.0, tag="x")
        store = c.store(RESISTOR)
        assert list(store.tag_indices("x")) == [0, 2]
        assert list(store.tag_indices("y")) == [1]
        assert list(store.tag_indices("missing")) == []

    def test_tags_listing(self):
        c = Circuit()
        c.add_current_source("a", "b", 1.0, tag="load")
        c.add_current_source("b", "c", 1.0, tag="load")
        assert c.tags(ISOURCE) == ["load"]

    def test_store_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Circuit().store("capacitor")


class TestAssemblyPreconditions:
    def test_assemble_requires_ground(self):
        c = Circuit()
        c.add_resistor("a", "b", 1.0)
        with pytest.raises(ValueError, match="ground"):
            c.assemble()

    def test_assemble_requires_elements(self):
        c = Circuit()
        c.set_ground("gnd")
        with pytest.raises(ValueError, match="conducting"):
            c.assemble()
