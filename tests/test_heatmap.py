"""ASCII heat-map rendering."""

import numpy as np
import pytest

from repro.analysis.heatmap import DEFAULT_RAMP, ascii_heatmap


class TestAsciiHeatmap:
    def test_extremes_use_ramp_ends(self):
        values = np.array([[0.0, 1.0]])
        text = ascii_heatmap(values)
        row = text.splitlines()[0]
        assert row[0] == DEFAULT_RAMP[0]
        assert row[1] == DEFAULT_RAMP[-1]

    def test_row_zero_at_bottom(self):
        values = np.array([[0.0, 0.0], [1.0, 1.0]])  # hot row is index 1
        text = ascii_heatmap(values)
        rows = text.splitlines()
        assert rows[0] == DEFAULT_RAMP[-1] * 2  # printed first (top)
        assert rows[1] == DEFAULT_RAMP[0] * 2

    def test_title_and_scale(self):
        text = ascii_heatmap(np.ones((2, 2)), title="IR drop", unit=" V")
        assert text.splitlines()[0] == "IR drop"
        assert "scale" in text.splitlines()[-1]

    def test_explicit_bounds_clip(self):
        values = np.array([[5.0, 15.0]])
        text = ascii_heatmap(values, lo=0.0, hi=10.0)
        row = text.splitlines()[0]
        assert row[1] == DEFAULT_RAMP[-1]  # clipped to hottest

    def test_constant_field(self):
        text = ascii_heatmap(np.full((3, 3), 2.0))
        assert DEFAULT_RAMP[0] * 3 in text

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros(4))

    def test_rejects_short_ramp(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros((2, 2)), ramp="x")
