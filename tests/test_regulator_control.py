"""Frequency-control policies."""

import pytest

from repro.config.converters import default_sc_spec
from repro.regulator.control import ClosedLoopControl, OpenLoopControl


class TestOpenLoop:
    def test_constant_frequency(self):
        spec = default_sc_spec()
        policy = OpenLoopControl()
        for load in (0.0, 0.01, 0.1):
            assert policy.frequency(spec, load) == spec.switching_frequency

    def test_name(self):
        assert OpenLoopControl().name == "open-loop"


class TestClosedLoop:
    def test_full_load_at_nominal(self):
        spec = default_sc_spec()
        policy = ClosedLoopControl()
        assert policy.frequency(spec, spec.max_load_current) == pytest.approx(
            spec.switching_frequency
        )

    def test_square_root_law(self):
        spec = default_sc_spec()
        policy = ClosedLoopControl()
        quarter = policy.frequency(spec, spec.max_load_current / 4)
        assert quarter == pytest.approx(spec.switching_frequency / 2)

    def test_minimum_frequency_floor(self):
        spec = default_sc_spec()
        policy = ClosedLoopControl(min_frequency_ratio=0.1)
        assert policy.frequency(spec, 0.0) == pytest.approx(
            0.1 * spec.switching_frequency
        )

    def test_sinking_load_treated_by_magnitude(self):
        spec = default_sc_spec()
        policy = ClosedLoopControl()
        assert policy.frequency(spec, -0.05) == policy.frequency(spec, 0.05)

    def test_overload_clamped_to_nominal(self):
        spec = default_sc_spec()
        policy = ClosedLoopControl()
        assert policy.frequency(spec, 1.0) == spec.switching_frequency

    def test_rejects_zero_floor(self):
        with pytest.raises(ValueError):
            ClosedLoopControl(min_frequency_ratio=0.0)

    def test_name(self):
        assert ClosedLoopControl().name == "closed-loop"
