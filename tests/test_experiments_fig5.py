"""Fig. 5 experiment drivers: EM lifetime shapes (small grid)."""

import pytest

from repro.core.experiments.fig5 import compute_fig5a, compute_fig5b

GRID = 8
LAYERS = (2, 4, 8)


@pytest.fixture(scope="module")
def fig5a():
    return compute_fig5a(layers=LAYERS, grid_nodes=GRID)


@pytest.fixture(scope="module")
def fig5b():
    return compute_fig5b(layers=LAYERS, grid_nodes=GRID)


class TestFig5a:
    def test_normalisation_reference(self, fig5a):
        assert fig5a.series["V-S PDN, Few TSV"][0] == pytest.approx(1.0)

    def test_regular_degrades_steeply(self, fig5a):
        """Paper: up to 84% lifetime loss from 2 to 8 layers."""
        loss = fig5a.regular_degradation("Reg. PDN, Few TSV")
        assert loss > 0.7

    def test_vs_nearly_flat(self, fig5a):
        series = fig5a.series["V-S PDN, Few TSV"]
        loss = 1.0 - series[-1] / series[0]
        assert loss < 0.35

    def test_vs_worse_at_two_layers(self, fig5a):
        """Paper: the V-S TSV array is below the regular one at 2 layers
        (through-vias outnumbered by regular Vdd TSVs)."""
        assert fig5a.series["Reg. PDN, Few TSV"][0] > fig5a.series["V-S PDN, Few TSV"][0]

    def test_vs_wins_at_eight_layers(self, fig5a):
        """Paper: >3x improvement for the matched Few-TSV comparison."""
        assert fig5a.improvement_at(8) > 3.0

    def test_denser_topologies_live_longer(self, fig5a):
        for idx in range(len(LAYERS)):
            assert (
                fig5a.series["Reg. PDN, Dense TSV"][idx]
                > fig5a.series["Reg. PDN, Sparse TSV"][idx]
                > fig5a.series["Reg. PDN, Few TSV"][idx]
            )

    def test_all_series_monotone_decreasing(self, fig5a):
        for values in fig5a.series.values():
            assert values == sorted(values, reverse=True)

    def test_format(self, fig5a):
        assert "Fig. 5a" in fig5a.format()


class TestFig5b:
    def test_vs_lifetime_flat(self, fig5b):
        series = fig5b.series["V-S PDN (25% Power C4)"]
        assert 1.0 - series[-1] / series[0] < 0.15

    def test_regular_scales_inverse_with_layers(self, fig5b):
        series = fig5b.series["Reg. PDN (25% Power C4)"]
        # Per-pad current doubles 2->4 layers; with n=1, lifetime halves.
        assert series[1] == pytest.approx(series[0] / 2, rel=0.15)

    def test_more_pads_help_linearly(self, fig5b):
        at_8 = {name: vals[-1] for name, vals in fig5b.series.items()}
        assert (
            at_8["Reg. PDN (100% Power C4)"]
            > at_8["Reg. PDN (75% Power C4)"]
            > at_8["Reg. PDN (50% Power C4)"]
            > at_8["Reg. PDN (25% Power C4)"]
        )

    def test_regular_full_pads_start_above_vs(self, fig5b):
        """Paper Fig. 5b: the 100%-pads regular PDN starts ~1.8x the
        2-layer V-S reference."""
        assert fig5b.series["Reg. PDN (100% Power C4)"][0] == pytest.approx(1.9, abs=0.4)

    def test_vs_gap_at_eight_layers(self, fig5b):
        """Paper: up to ~5x C4 lifetime gap at 8 layers."""
        assert fig5b.improvement_at(8) > 4.0

    def test_even_full_allocation_insufficient(self, fig5b):
        """Paper: even 100% power pads cannot match V-S at 8 layers."""
        at_8 = fig5b.series
        assert at_8["Reg. PDN (100% Power C4)"][-1] < at_8["V-S PDN (25% Power C4)"][-1]

    def test_format(self, fig5b):
        assert "Fig. 5b" in fig5b.format()
