"""Converter placement optimisation (extension)."""

import pytest

from repro.config.stackups import StackConfig
from repro.core.placement import (
    GreedyConverterPlacer,
    PlacedStackedPDN3D,
    PlacementResult,
)
from repro.pdn.geometry import distribute_per_core, GridGeometry

GRID = 8


@pytest.fixture(scope="module")
def stack():
    return StackConfig(n_layers=2, grid_nodes=GRID)


@pytest.fixture(scope="module")
def placer(stack):
    return GreedyConverterPlacer(stack, imbalance=0.5)


@pytest.fixture(scope="module")
def optimised(placer):
    return placer.optimise(budget_per_core=4)


class TestPlacedPDN:
    def test_explicit_placement_matches_uniform_pattern(self, stack):
        """Feeding the uniform distribution through the explicit-placement
        class reproduces the base model exactly."""
        geometry = GridGeometry.from_stack(stack)
        uniform_cells = distribute_per_core(geometry, 4)
        from repro.pdn.stacked3d import StackedPDN3D

        base = StackedPDN3D(stack, converters_per_core=4).solve()
        placed = PlacedStackedPDN3D(stack, uniform_cells).solve()
        assert placed.max_ir_drop_fraction() == pytest.approx(
            base.max_ir_drop_fraction(), rel=1e-9
        )

    def test_empty_placement_rejected(self, stack):
        with pytest.raises(ValueError):
            PlacedStackedPDN3D(stack, {})

    def test_concentrated_placement_still_solves(self, stack):
        result = PlacedStackedPDN3D(stack, {(0, 0): 64}).solve()
        assert result.max_ir_drop_fraction() > 0


class TestGreedyPlacer:
    def test_history_monotone_decreasing(self, optimised):
        assert optimised.history == sorted(optimised.history, reverse=True)

    def test_budget_respected(self, placer, optimised):
        geometry = placer.geometry
        per_core = sum(
            m
            for cell, m in optimised.placement.items()
            if geometry.core_of_cell(cell) == (0, 0)
        )
        assert per_core == 4

    def test_greedy_at_least_matches_uniform(self, optimised):
        """The headline ablation finding: with the Table-1 metal the
        uniform distribution is already near-optimal — greedy cannot
        beat it by more than a sliver, and never loses more than one."""
        assert optimised.ir_drop <= optimised.uniform_ir_drop * 1.05
        assert abs(optimised.improvement) < 0.1

    def test_more_budget_less_noise(self, placer):
        two = placer.optimise(budget_per_core=2)
        four = placer.optimise(budget_per_core=4)
        assert four.ir_drop < two.ir_drop

    def test_improvement_metric(self):
        result = PlacementResult(
            placement={(0, 0): 1}, ir_drop=0.03, uniform_ir_drop=0.04, history=[0.03]
        )
        assert result.improvement == pytest.approx(0.25)

    def test_validation(self, stack):
        with pytest.raises(ValueError):
            GreedyConverterPlacer(stack, imbalance=2.0)
        with pytest.raises(ValueError):
            GreedyConverterPlacer(stack).optimise(budget_per_core=0)
