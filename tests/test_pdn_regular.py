"""The regular (parallel) 3D PDN: electrical sanity and scaling laws."""

import numpy as np
import pytest

from repro.config.stackups import PadAllocation, StackConfig, TSV_TOPOLOGIES
from repro.pdn.regular3d import RegularPDN3D

GRID = 8


def make(n_layers=2, topology="Few", fraction=0.25, **kwargs):
    stack = StackConfig(
        n_layers=n_layers,
        grid_nodes=GRID,
        tsv_topology=TSV_TOPOLOGIES[topology],
        pads=PadAllocation(power_fraction=fraction),
    )
    return RegularPDN3D(stack, **kwargs)


class TestElectricalSanity:
    def test_total_current_balances(self, regular_result, small_stack):
        expected = small_stack.total_peak_power / small_stack.processor.vdd
        supplied = regular_result.solution.vsource_currents("supply")[0]
        assert supplied == pytest.approx(expected, rel=1e-9)

    def test_pad_currents_sum_to_total(self, regular_result, small_stack):
        expected = small_stack.total_peak_power / small_stack.processor.vdd
        vdd_currents = regular_result.conductor_currents("c4.vdd")
        assert vdd_currents.sum() == pytest.approx(expected, rel=1e-9)

    def test_gnd_pads_return_same_current(self, regular_result):
        vdd = regular_result.conductor_currents("c4.vdd").sum()
        gnd = regular_result.conductor_currents("c4.gnd").sum()
        assert vdd == pytest.approx(gnd, rel=1e-9)

    def test_ir_drop_positive_and_sane(self, regular_result):
        drop = regular_result.max_ir_drop_fraction()
        assert 0.0 < drop < 0.2

    def test_load_power_below_source_power(self, regular_result):
        assert regular_result.load_power() < regular_result.source_power()

    def test_efficiency_between_zero_and_one(self, regular_result):
        assert 0.8 < regular_result.efficiency() < 1.0

    def test_power_balance(self, regular_result):
        assert regular_result.solution.power_balance_error() < 1e-6

    def test_ir_drop_map_shape(self, regular_result):
        assert regular_result.ir_drop_map(0).shape == (GRID, GRID)

    def test_upper_layer_sees_more_drop(self, regular_result):
        # Farther from the pads -> worse supply.
        assert (
            regular_result.ir_drop_map(1).max()
            >= regular_result.ir_drop_map(0).max()
        )


class TestScalingLaws:
    def test_pad_current_scales_with_layers(self):
        r2 = make(n_layers=2).solve()
        r4 = make(n_layers=4).solve()
        mean2 = r2.conductor_currents("c4").mean()
        mean4 = r4.conductor_currents("c4").mean()
        assert mean4 == pytest.approx(2 * mean2, rel=0.01)

    def test_tsv_current_grows_with_layers(self):
        r2 = make(n_layers=2).solve()
        r4 = make(n_layers=4).solve()
        assert r4.conductor_currents("tsv").max() > r2.conductor_currents("tsv").max()

    def test_more_pads_lower_per_pad_current(self):
        quarter = make(fraction=0.25).solve()
        full = make(fraction=1.0).solve()
        assert full.conductor_currents("c4").mean() < quarter.conductor_currents("c4").mean()

    def test_denser_tsvs_lower_per_tsv_current(self):
        few = make(topology="Few").solve()
        dense = make(topology="Dense").solve()
        assert dense.conductor_currents("tsv").max() < few.conductor_currents("tsv").max()

    def test_denser_tsvs_lower_ir_drop(self):
        few = make(n_layers=4, topology="Few").solve()
        dense = make(n_layers=4, topology="Dense").solve()
        assert dense.max_ir_drop_fraction() < few.max_ir_drop_fraction()

    def test_worst_case_is_all_layers_active(self):
        pdn = make(n_layers=2)
        full = pdn.solve(layer_activities=np.array([1.0, 1.0]))
        partial = pdn.solve(layer_activities=np.array([1.0, 0.4]))
        assert partial.max_ir_drop_fraction() < full.max_ir_drop_fraction()


class TestSolveInterface:
    def test_activity_vector_shape_checked(self):
        with pytest.raises(ValueError, match="shape"):
            make(n_layers=2).solve(layer_activities=np.ones(3))

    def test_activity_range_checked(self):
        with pytest.raises(ValueError, match="\\[0, 1\\]"):
            make(n_layers=2).solve(layer_activities=np.array([1.0, 1.5]))

    def test_power_maps_path(self, small_stack):
        from repro.power.powermap import layer_power_map

        pdn = make(n_layers=2)
        maps = [layer_power_map(pdn.stack, activity=1.0)] * 2
        result = pdn.solve(power_maps=maps)
        baseline = pdn.solve(layer_activities=np.ones(2))
        assert result.max_ir_drop_fraction() == pytest.approx(
            baseline.max_ir_drop_fraction(), rel=1e-6
        )

    def test_power_map_count_checked(self):
        from repro.power.powermap import layer_power_map

        pdn = make(n_layers=2)
        with pytest.raises(ValueError, match="power maps"):
            pdn.solve(power_maps=[layer_power_map(pdn.stack)])

    def test_repeated_solves_consistent(self):
        pdn = make(n_layers=2)
        a = pdn.solve().max_ir_drop_fraction()
        b = pdn.solve().max_ir_drop_fraction()
        assert a == b
