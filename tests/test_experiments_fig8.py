"""Fig. 8 experiment driver: system power efficiency (small grid)."""

import pytest

from repro.core.experiments.fig8 import regular_sc_efficiency, compute_fig8


@pytest.fixture(scope="module")
def result():
    return compute_fig8(
        n_layers=4,
        imbalances=(0.1, 0.5, 1.0),
        converters_per_core=(2, 8),
        grid_nodes=8,
    )


class TestRegularSCLine:
    def test_flat_with_imbalance(self):
        lo = regular_sc_efficiency(0.1, n_layers=4)
        hi = regular_sc_efficiency(0.9, n_layers=4)
        assert abs(lo - hi) < 0.05

    def test_sensible_range(self):
        eff = regular_sc_efficiency(0.5, n_layers=4)
        assert 0.6 < eff < 0.95


class TestFig8:
    def test_series_shapes(self, result):
        assert set(result.vs_series) == {2, 8}
        assert len(result.regular_sc) == 3

    def test_efficiency_decreases_with_imbalance(self, result):
        values = [v for v in result.vs_series[8] if v is not None]
        assert values == sorted(values, reverse=True)

    def test_more_converters_lower_efficiency(self, result):
        """Open-loop converters burn fixed parasitic power each (paper:
        increasing the number of converters reduces power efficiency)."""
        for v2, v8 in zip(result.vs_series[2], result.vs_series[8]):
            if v2 is not None and v8 is not None:
                assert v8 < v2

    def test_vs_beats_regular_at_low_imbalance(self, result):
        """Paper: V-S PDNs have higher power efficiency (converters only
        carry the differential current)."""
        assert result.vs_series[2][0] > result.regular_sc[0]

    def test_rating_violations_skipped(self, result):
        assert result.vs_series[2][-1] is None

    def test_vs_at_accessor(self, result):
        assert result.vs_at(8, 0.1) == result.vs_series[8][0]

    def test_format(self, result):
        text = result.format()
        assert "Fig. 8" in text and "Reg. PDN" in text
