"""Technology parameter dataclasses (paper Table 1)."""

import math

import pytest

from repro.config.technology import (
    C4Technology,
    EMParameters,
    OnChipMetal,
    PackageModel,
    TSVTechnology,
    default_c4,
    default_em,
    default_metal,
    default_tsv,
)


class TestC4Technology:
    def test_table1_defaults(self):
        c4 = default_c4()
        assert c4.pitch == pytest.approx(200e-6)
        assert c4.resistance == pytest.approx(10e-3)

    def test_pads_per_side(self):
        c4 = default_c4()
        # 6.64 mm die / 200 um pitch -> 33 sites per side.
        assert c4.pads_per_side(math.sqrt(44.12e-6)) == 33

    def test_pads_per_side_rejects_zero(self):
        with pytest.raises(ValueError):
            default_c4().pads_per_side(0.0)

    def test_rejects_nonpositive_pitch(self):
        with pytest.raises(ValueError):
            C4Technology(pitch=0.0)


class TestTSVTechnology:
    def test_table1_defaults(self):
        tsv = default_tsv()
        assert tsv.diameter == pytest.approx(5e-6)
        assert tsv.min_pitch == pytest.approx(10e-6)
        assert tsv.resistance == pytest.approx(44.539e-3)
        assert tsv.koz_side == pytest.approx(9.88e-6)

    def test_koz_area(self):
        assert default_tsv().koz_area == pytest.approx(9.88e-6**2)

    def test_koz_cannot_be_smaller_than_tsv(self):
        with pytest.raises(ValueError, match="keep-out"):
            TSVTechnology(diameter=10e-6, koz_side=5e-6)


class TestOnChipMetal:
    def test_table1_defaults(self):
        metal = default_metal()
        assert metal.pitch == pytest.approx(810e-6)
        assert metal.width == pytest.approx(400e-6)
        assert metal.thickness == pytest.approx(720e-6)

    def test_sheet_resistance_formula(self):
        metal = default_metal()
        expected = metal.resistivity / metal.thickness * (metal.pitch / metal.width)
        assert metal.sheet_resistance == pytest.approx(expected)

    def test_grid_edge_resistance_square_cell(self):
        metal = default_metal()
        assert metal.grid_edge_resistance(1e-3) == pytest.approx(metal.sheet_resistance)

    def test_grid_edge_rejects_zero_cell(self):
        with pytest.raises(ValueError):
            default_metal().grid_edge_resistance(0.0)


class TestPackageModel:
    def test_defaults_positive(self):
        pkg = PackageModel()
        assert pkg.resistance > 0
        assert pkg.inductance > 0
        assert pkg.decap > 0

    def test_rejects_negative_resistance(self):
        with pytest.raises(ValueError):
            PackageModel(resistance=-1.0)


class TestEMParameters:
    def test_thermal_factor_is_exponential(self):
        em = default_em()
        from repro.config.technology import BOLTZMANN_EV

        expected = math.exp(em.activation_energy / (BOLTZMANN_EV * em.temperature))
        assert em.thermal_factor == pytest.approx(expected)

    def test_higher_temperature_lowers_factor(self):
        cold = EMParameters(temperature=300.0)
        hot = EMParameters(temperature=400.0)
        assert hot.thermal_factor < cold.thermal_factor

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            EMParameters(sigma=0.0)
