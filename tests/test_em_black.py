"""Black's-equation median lifetimes."""

import numpy as np
import pytest

from repro.config.technology import EMParameters
from repro.em.black import (
    C4_CROSS_SECTION,
    TSV_CROSS_SECTION,
    black_median_lifetime,
    median_lifetimes_from_currents,
)


class TestBlackEquation:
    def test_lifetime_positive(self):
        assert black_median_lifetime(0.1, C4_CROSS_SECTION) > 0

    def test_current_exponent(self):
        em = EMParameters(exponent=2.0)
        t1 = black_median_lifetime(0.1, C4_CROSS_SECTION, em)
        t2 = black_median_lifetime(0.2, C4_CROSS_SECTION, em)
        assert t2 / t1 == pytest.approx(0.25)

    def test_default_exponent_is_one(self):
        t1 = black_median_lifetime(0.1, C4_CROSS_SECTION)
        t2 = black_median_lifetime(0.2, C4_CROSS_SECTION)
        assert t2 / t1 == pytest.approx(0.5)

    def test_zero_current_is_effectively_immortal(self):
        idle = black_median_lifetime(0.0, C4_CROSS_SECTION)
        loaded = black_median_lifetime(0.1, C4_CROSS_SECTION)
        assert idle > loaded * 1e3

    def test_negative_current_rejected(self):
        with pytest.raises(ValueError):
            black_median_lifetime(-0.1, C4_CROSS_SECTION)

    def test_cross_sections_sensible(self):
        # A TSV is much narrower than a C4 bump.
        assert TSV_CROSS_SECTION < C4_CROSS_SECTION

    def test_smaller_cross_section_shorter_life(self):
        wide = black_median_lifetime(0.05, C4_CROSS_SECTION)
        narrow = black_median_lifetime(0.05, TSV_CROSS_SECTION)
        assert narrow < wide


class TestVectorised:
    def test_matches_scalar(self):
        currents = np.array([0.01, 0.05, 0.1])
        vec = median_lifetimes_from_currents(currents, C4_CROSS_SECTION)
        for c, t in zip(currents, vec):
            assert t == pytest.approx(black_median_lifetime(c, C4_CROSS_SECTION))

    def test_uses_magnitudes(self):
        pos = median_lifetimes_from_currents(np.array([0.1]), C4_CROSS_SECTION)
        neg = median_lifetimes_from_currents(np.array([-0.1]), C4_CROSS_SECTION)
        assert pos[0] == neg[0]

    def test_monotone_decreasing_in_current(self):
        currents = np.linspace(0.01, 0.5, 20)
        lifetimes = median_lifetimes_from_currents(currents, C4_CROSS_SECTION)
        assert np.all(np.diff(lifetimes) < 0)
