"""Hybrid (multi-story) power delivery."""

import numpy as np
import pytest

from repro.config.stackups import StackConfig
from repro.pdn.hybrid3d import HybridPDN3D
from repro.workload.imbalance import interleaved_layer_activities

GRID = 8


@pytest.fixture(scope="module")
def stack():
    return StackConfig(n_layers=4, grid_nodes=GRID)


def build(stack, h, **kwargs):
    return HybridPDN3D(stack, story_height=h, converters_per_core=8, **kwargs)


class TestConstruction:
    def test_supply_voltage_scales_with_story_height(self, stack):
        assert build(stack, 1).supply_voltage == pytest.approx(1.0)
        assert build(stack, 2).supply_voltage == pytest.approx(2.0)
        assert build(stack, 4).supply_voltage == pytest.approx(4.0)

    def test_story_count(self, stack):
        assert build(stack, 2).n_stories == 2

    def test_indivisible_height_rejected(self, stack):
        with pytest.raises(ValueError, match="divide"):
            HybridPDN3D(stack, story_height=3)

    def test_single_layer_stories_have_no_converters(self, stack):
        pdn = build(stack, 1)
        assert pdn._converter_multiplicity is None


class TestElectrical:
    def test_power_conserved(self, stack):
        for h in (1, 2, 4):
            result = build(stack, h).solve()
            scale = max(1.0, result.source_power())
            assert result.solution.power_balance_error() / scale < 1e-8

    def test_full_height_matches_vs_offchip_current(self, stack):
        """h = N recovers the full V-S charge-recycling behaviour."""
        result = build(stack, 4).solve()
        supplied = result.solution.vsource_currents("supply")[0]
        one_layer = stack.processor.peak_current
        assert supplied == pytest.approx(one_layer, rel=0.15)

    def test_height_one_draws_full_current(self, stack):
        result = build(stack, 1).solve()
        supplied = result.solution.vsource_currents("supply")[0]
        assert supplied == pytest.approx(4 * stack.processor.peak_current, rel=0.05)

    def test_pad_current_falls_with_story_height(self, stack):
        """The EM win grows with the stacked fraction."""
        currents = {
            h: build(stack, h).solve().conductor_currents("c4").max()
            for h in (1, 2, 4)
        }
        assert currents[4] < currents[2] < currents[1]

    def test_intermediate_height_is_a_noise_compromise(self, stack):
        """Under imbalance, taller stories add regulation noise while
        shorter ones add delivery current — both extremes can lose to
        the middle (or at least the middle must not be the worst)."""
        acts = interleaved_layer_activities(4, 0.5)
        drops = {
            h: build(stack, h).solve(layer_activities=acts).max_ir_drop_fraction()
            for h in (1, 2, 4)
        }
        assert drops[2] <= max(drops[1], drops[4])

    def test_efficiency_decreases_with_height(self, stack):
        """More regulated rails burn more open-loop parasitic power."""
        effs = {
            h: build(stack, h).solve().efficiency() for h in (1, 2, 4)
        }
        assert effs[1] > effs[2] > effs[4]

    def test_converter_rating_check_available(self, stack):
        result = build(stack, 2).solve(
            layer_activities=interleaved_layer_activities(4, 0.5)
        )
        assert isinstance(result.converters_within_rating(), bool)

    def test_em_conductor_groups_present(self, stack):
        result = build(stack, 2).solve()
        assert result.has_group_prefix("c4")
        assert result.has_group_prefix("tvia")
        assert len(result.conductor_currents("c4")) > 0
