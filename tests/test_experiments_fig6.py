"""Fig. 6 experiment driver: noise vs imbalance (small grid)."""

import pytest

from repro.core.experiments.fig6 import compute_fig6


@pytest.fixture(scope="module")
def result():
    return compute_fig6(
        n_layers=4,
        imbalances=(0.0, 0.25, 0.5, 0.75, 1.0),
        converters_per_core=(2, 8),
        grid_nodes=8,
    )


class TestFig6:
    def test_series_lengths(self, result):
        assert set(result.vs_series) == {2, 8}
        assert all(len(v) == 5 for v in result.vs_series.values())

    def test_regular_lines_present(self, result):
        assert set(result.regular_lines) == {"Dense", "Sparse", "Few"}

    def test_regular_ordering(self, result):
        assert (
            result.regular_lines["Dense"]
            <= result.regular_lines["Sparse"]
            <= result.regular_lines["Few"]
        )

    def test_vs_noise_monotone_in_imbalance(self, result):
        values = [v for v in result.vs_series[8] if v is not None]
        assert values == sorted(values)

    def test_more_converters_lower_noise(self, result):
        for v2, v8 in zip(result.vs_series[2], result.vs_series[8]):
            if v2 is not None and v8 is not None and v2 > 0.01:
                assert v8 <= v2

    def test_rating_violations_marked_none(self, result):
        """The 2-converter bank saturates at high imbalance (paper skips
        those points)."""
        assert result.vs_series[2][-1] is None

    def test_eight_converters_cover_full_sweep(self, result):
        assert all(v is not None for v in result.vs_series[8])

    def test_vs_at_accessor(self, result):
        assert result.vs_at(8, 0.0) == result.vs_series[8][0]

    def test_format_marks_skips(self, result):
        text = result.format()
        assert "Fig. 6" in text
        assert "-" in text

    def test_crossover_detection(self, result):
        cross = result.crossover_imbalance(converters=8, regular="Dense")
        assert cross is None or 0.0 <= cross <= 1.0
