"""Sampling campaign and stack scheduling."""

import numpy as np
import pytest

from repro.config.stackups import ProcessorSpec
from repro.workload.sampling import (
    expected_scheduling_gain,
    sample_suite,
    schedule_stack,
)


@pytest.fixture(scope="module")
def suite():
    return sample_suite(ProcessorSpec(), n_samples=400, rng=11)


class TestSampleSuite:
    def test_sample_counts(self, suite):
        assert all(len(s.powers) == 400 for s in suite.values())

    def test_dynamic_excludes_leakage(self, suite):
        proc = ProcessorSpec()
        for s in suite.values():
            assert np.allclose(s.powers - s.dynamic_powers, proc.leakage_power)

    def test_max_imbalance_in_unit_range(self, suite):
        for s in suite.values():
            assert 0.0 <= s.max_imbalance <= 1.0

    def test_percentiles_sorted(self, suite):
        p = suite["ferret"].percentiles()
        assert np.all(np.diff(p) >= 0)


class TestScheduleStack:
    def test_output_length(self, suite):
        out = schedule_stack(suite, ["x264"] * 4, rng=0)
        assert len(out) == 3

    def test_same_app_bounded_by_app_spread(self, suite):
        app = "blackscholes"
        worst = 0.0
        for trial in range(50):
            out = schedule_stack(suite, [app] * 4, rng=trial)
            worst = max(worst, float(out.max()))
        assert worst <= suite[app].max_imbalance + 1e-9

    def test_unknown_app_rejected(self, suite):
        with pytest.raises(KeyError):
            schedule_stack(suite, ["nonexistent", "x264"])

    def test_single_layer_rejected(self, suite):
        with pytest.raises(ValueError):
            schedule_stack(suite, ["x264"])


class TestSchedulingGain:
    def test_same_app_scheduling_reduces_imbalance(self, suite):
        """The paper's scheduling recommendation: same-application
        stacks show materially lower worst-pair imbalance."""
        gains = expected_scheduling_gain(suite, n_layers=4, trials=150, rng=5)
        assert gains["same_application"] < gains["mixed_applications"]

    def test_rejects_single_layer(self, suite):
        with pytest.raises(ValueError):
            expected_scheduling_gain(suite, n_layers=1)
