"""ArchFP-lite slicing floorplanner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.floorplan.blocks import Block, Rect
from repro.floorplan.slicing import floorplan_blocks, grid_of_cores


class TestRect:
    def test_area(self):
        assert Rect(0, 0, 2, 3).area == 6

    def test_corners(self):
        r = Rect(1, 2, 3, 4)
        assert r.x2 == 4 and r.y2 == 6

    def test_center(self):
        assert Rect(0, 0, 2, 4).center == (1, 2)

    def test_overlap_area(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(1, 1, 2, 2)
        assert a.overlap_area(b) == pytest.approx(1.0)

    def test_disjoint_overlap_is_zero(self):
        assert Rect(0, 0, 1, 1).overlap_area(Rect(5, 5, 1, 1)) == 0.0

    def test_contains_point(self):
        r = Rect(0, 0, 1, 1)
        assert r.contains_point(0.5, 0.5)
        assert not r.contains_point(2, 0.5)

    def test_aspect_ratio(self):
        assert Rect(0, 0, 4, 2).aspect_ratio == pytest.approx(2.0)

    def test_translated(self):
        r = Rect(0, 0, 1, 1).translated(3, 4)
        assert (r.x, r.y) == (3, 4)

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 0, 1)


class TestBlock:
    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Block("", 1.0)

    def test_rejects_zero_area(self):
        with pytest.raises(ValueError):
            Block("b", 0.0)


class TestFloorplanBlocks:
    def test_single_block_fills_outline(self):
        outline = Rect(0, 0, 2, 3)
        placed = floorplan_blocks([Block("a", 1.0)], outline)
        assert placed["a"] == outline

    def test_two_blocks_split_by_area(self):
        outline = Rect(0, 0, 4, 1)
        placed = floorplan_blocks([Block("a", 3.0), Block("b", 1.0)], outline)
        assert placed["a"].area == pytest.approx(3.0)
        assert placed["b"].area == pytest.approx(1.0)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            floorplan_blocks([Block("a", 1.0), Block("a", 2.0)], Rect(0, 0, 1, 1))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            floorplan_blocks([], Rect(0, 0, 1, 1))

    @given(
        st.lists(
            st.floats(min_value=0.05, max_value=10.0), min_size=1, max_size=12
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_tiling_invariants(self, areas):
        """Placements tile the outline: areas proportional, no overlap,
        all inside."""
        blocks = [Block(f"b{i}", a) for i, a in enumerate(areas)]
        outline = Rect(0, 0, 3.0, 2.0)
        placed = floorplan_blocks(blocks, outline)
        total = sum(areas)
        rects = list(placed.values())
        # Proportional area assignment.
        for block in blocks:
            expected = outline.area * block.area / total
            assert placed[block.name].area == pytest.approx(expected, rel=1e-9)
        # Everything inside the outline.
        for r in rects:
            assert r.x >= outline.x - 1e-12 and r.y >= outline.y - 1e-12
            assert r.x2 <= outline.x2 + 1e-9 and r.y2 <= outline.y2 + 1e-9
        # Pairwise non-overlap.
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                assert rects[i].overlap_area(rects[j]) < 1e-9
        # Exhaustive tiling.
        assert sum(r.area for r in rects) == pytest.approx(outline.area)


class TestGridOfCores:
    def test_core_tiles_are_replicated(self):
        die = Rect(0, 0, 4, 4)
        blocks = [Block("alu", 1.0), Block("cache", 3.0)]
        placed = grid_of_cores(die, rows=2, cols=2, core_blocks=blocks)
        assert len(placed) == 8
        assert placed["core0_0.alu"].area == pytest.approx(
            placed["core1_1.alu"].area
        )

    def test_total_area_matches_die(self):
        die = Rect(0, 0, 6, 6)
        blocks = [Block("a", 2.0), Block("b", 1.0), Block("c", 1.0)]
        placed = grid_of_cores(die, rows=3, cols=3, core_blocks=blocks)
        assert sum(r.area for r in placed.values()) == pytest.approx(die.area)
