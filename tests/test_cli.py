"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("table1", "table2", "fig3", "fig5a", "fig5b",
                        "fig6", "fig7", "fig8", "headline", "explore"):
            args = parser.parse_args(
                [command] if command in ("table1", "table2", "fig3", "fig7")
                else [command, "--grid", "8"]
            )
            assert args.command == command

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestTypedFlagValidation:
    """Bad numeric flag values exit 2 with one stderr line, no traceback."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["contingency", "--seed", "x"],
            ["fig6", "--grid", "abc"],
            ["fig6", "--grid", "0"],
            ["fig6", "--grid", "8", "--layers", "-3"],
            ["fig7", "--samples", "0"],
            ["fig6", "--grid", "8", "--max-retries", "-1"],
            ["fig6", "--grid", "8", "--task-timeout", "0"],
            ["fig6", "--grid", "8", "--task-timeout", "nan"],
            ["fig6", "--grid", "8", "--workers", "0"],
        ],
    )
    def test_invalid_numeric_flag_is_one_line_error(self, argv, capsys):
        assert main(argv) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        lines = [l for l in captured.err.splitlines() if l.strip()]
        assert len(lines) == 1
        assert lines[0].startswith("repro: ReproError:")
        assert "Traceback" not in captured.err

    def test_supervision_flags_parse_everywhere(self):
        parser = build_parser()
        args = parser.parse_args(
            ["headline", "--grid", "8", "--run-dir", "runs/x",
             "--max-retries", "3", "--task-timeout", "1.5", "--workers", "2"]
        )
        assert args.run_dir == "runs/x"
        assert args.max_retries == 3
        assert args.task_timeout == 1.5
        assert args.workers == 2
        args = parser.parse_args(["table1", "--resume", "runs/x"])
        assert args.resume == "runs/x"

    def test_supervision_config_built_from_flags(self):
        from repro.core.experiments import get_experiment

        args = build_parser().parse_args(
            ["fig6", "--grid", "8", "--layers", "2",
             "--run-dir", "runs/y", "--fail-fast"]
        )
        config = get_experiment("fig6").config_from_args(args)
        supervision = config.option("supervision")
        assert supervision is not None
        assert supervision.run_dir == "runs/y"
        assert supervision.fail_fast is True
        assert supervision.resume is False
        # No supervision flags -> no supervisor is attached.
        args = build_parser().parse_args(["fig6", "--grid", "8"])
        config = get_experiment("fig6").config_from_args(args)
        assert config.option("supervision") is None


class TestExecution:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "C4 Pad Pitch" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "6650" in capsys.readouterr().out

    def test_fig7_small(self, capsys):
        assert main(["fig7", "--samples", "50"]) == 0
        assert "blackscholes" in capsys.readouterr().out

    def test_fig6_small_grid(self, capsys):
        assert main(["fig6", "--grid", "8", "--layers", "2"]) == 0
        assert "Fig. 6" in capsys.readouterr().out
