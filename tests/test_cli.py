"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("table1", "table2", "fig3", "fig5a", "fig5b",
                        "fig6", "fig7", "fig8", "headline", "explore"):
            args = parser.parse_args(
                [command] if command in ("table1", "table2", "fig3", "fig7")
                else [command, "--grid", "8"]
            )
            assert args.command == command

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestExecution:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "C4 Pad Pitch" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "6650" in capsys.readouterr().out

    def test_fig7_small(self, capsys):
        assert main(["fig7", "--samples", "50"]) == 0
        assert "blackscholes" in capsys.readouterr().out

    def test_fig6_small_grid(self, capsys):
        assert main(["fig6", "--grid", "8", "--layers", "2"]) == 0
        assert "Fig. 6" in capsys.readouterr().out
