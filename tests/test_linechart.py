"""ASCII line-chart rendering."""

import pytest

from repro.analysis.linechart import Series, ascii_linechart


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="lengths"):
            Series("s", [1, 2], [1.0])

    def test_multichar_marker_rejected(self):
        with pytest.raises(ValueError, match="marker"):
            Series("s", [1], [1.0], marker="**")

    def test_gaps_allowed(self):
        Series("s", [1, 2, 3], [1.0, None, 3.0])


class TestLinechart:
    def test_renders_markers_and_legend(self):
        s1 = Series("up", [0, 1, 2], [0.0, 1.0, 2.0], marker="u")
        s2 = Series("down", [0, 1, 2], [2.0, 1.0, 0.0], marker="d")
        text = ascii_linechart([s1, s2], width=30, height=8)
        assert "u up" in text and "d down" in text
        assert text.count("u") >= 3

    def test_gap_points_skipped(self):
        s = Series("gap", [0, 1, 2], [0.0, None, 2.0], marker="g")
        text = ascii_linechart([s], width=24, height=8)
        # Only two markers drawn.
        plot_rows = [l for l in text.splitlines() if "|" in l]
        assert sum(row.count("g") for row in plot_rows) == 2

    def test_axis_bounds_shown(self):
        s = Series("s", [0.0, 10.0], [5.0, 15.0])
        text = ascii_linechart([s], width=30, height=8)
        assert "15.00" in text
        assert "5.00" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_linechart([])

    def test_all_gaps_rejected(self):
        s = Series("s", [0, 1], [None, None])
        with pytest.raises(ValueError, match="finite"):
            ascii_linechart([s])

    def test_tiny_canvas_rejected(self):
        s = Series("s", [0, 1], [0.0, 1.0])
        with pytest.raises(ValueError):
            ascii_linechart([s], width=4, height=2)

    def test_constant_series_reference_line(self):
        s = Series("ref", [0, 1, 2, 3], [1.0, 1.0, 1.0, 1.0], marker="-")
        text = ascii_linechart([s], width=20, height=6)
        assert "----" not in text.splitlines()[-1]  # legend row differs
