"""Inductive (buck) converter comparison — the paper's future work."""

import pytest

from repro.regulator.inductive import (
    BuckCompactModel,
    BuckConverterSpec,
    compare_sc_vs_buck,
)


@pytest.fixture(scope="module")
def buck():
    return BuckCompactModel()


class TestBuckModel:
    def test_midpoint_regulation(self, buck):
        op = buck.operating_point(2.0, 0.0, 0.0)
        assert op.ideal_output_voltage == pytest.approx(1.0)

    def test_output_droop(self, buck):
        op = buck.operating_point(2.0, 0.0, 0.05)
        assert op.voltage_drop == pytest.approx(0.05 * buck.series_resistance)

    def test_ripple_scales_inverse_with_inductance(self):
        small = BuckCompactModel(BuckConverterSpec(inductance=5e-9))
        large = BuckCompactModel(BuckConverterSpec(inductance=20e-9))
        assert small.ripple_current(1.0) > large.ripple_current(1.0)

    def test_losses_positive(self, buck):
        op = buck.operating_point(2.0, 0.0, 0.05)
        assert op.series_loss > 0
        assert op.parasitic_loss > 0

    def test_power_bookkeeping(self, buck):
        op = buck.operating_point(2.0, 0.0, 0.05)
        assert op.input_power == pytest.approx(
            op.output_power + op.series_loss + op.parasitic_loss
        )

    def test_intermediate_rails(self, buck):
        op = buck.operating_point(3.0, 1.0, 0.02)
        assert op.ideal_output_voltage == pytest.approx(2.0)

    def test_inverted_rails_rejected(self, buck):
        with pytest.raises(ValueError):
            buck.operating_point(0.0, 1.0, 0.01)

    def test_load_rating(self, buck):
        assert buck.check_load(0.1)
        assert not buck.check_load(0.2)


class TestSCvsBuck:
    def test_sc_wins_efficiency_on_die(self):
        """Why the paper (and its cited surveys) bet on capacitive
        conversion: on-die inductors' ripple and DCR losses."""
        comparison = compare_sc_vs_buck(load_current=0.05)
        assert comparison["sc"]["efficiency"] > comparison["buck"]["efficiency"]

    def test_sc_wins_area(self):
        comparison = compare_sc_vs_buck()
        assert comparison["sc"]["area"] < comparison["buck"]["area"]

    def test_comparable_droop(self):
        comparison = compare_sc_vs_buck(load_current=0.05)
        assert comparison["sc"]["voltage_drop"] == pytest.approx(
            comparison["buck"]["voltage_drop"], rel=0.2
        )

    def test_sc_advantage_across_loads(self):
        for load in (0.01, 0.05, 0.09):
            comparison = compare_sc_vs_buck(load_current=load)
            assert comparison["sc"]["efficiency"] > comparison["buck"]["efficiency"]
