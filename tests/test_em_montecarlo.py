"""Monte-Carlo EM lifetime vs the analytic array CDF."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.technology import EMParameters
from repro.em.array_mttf import expected_em_lifetime
from repro.em.montecarlo import simulate_array_lifetime


class TestMonteCarloBasics:
    def test_reproducible(self):
        medians = np.array([100.0, 200.0, 400.0])
        a = simulate_array_lifetime(medians, trials=200, rng=1)
        b = simulate_array_lifetime(medians, trials=200, rng=1)
        assert np.array_equal(a.samples, b.samples)

    def test_sample_count(self):
        mc = simulate_array_lifetime(np.array([10.0]), trials=123, rng=0)
        assert len(mc.samples) == 123

    def test_percentiles_ordered(self):
        mc = simulate_array_lifetime(np.full(20, 100.0), trials=500, rng=2)
        assert mc.percentile(25) <= mc.median <= mc.percentile(75)
        assert mc.spread >= 0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            simulate_array_lifetime(np.array([]), trials=10)

    def test_rejects_nonpositive_medians(self):
        with pytest.raises(ValueError):
            simulate_array_lifetime(np.array([0.0]), trials=10)


class TestAgreementWithAnalytic:
    def test_median_matches_closed_form(self):
        """The MC median of min_i(t_i) is the analytic P(t)=0.5 point."""
        rng = np.random.default_rng(7)
        medians = rng.uniform(50.0, 500.0, size=200)
        em = EMParameters()
        analytic = expected_em_lifetime(medians, em)
        mc = simulate_array_lifetime(medians, trials=4000, em=em, rng=3)
        assert mc.median == pytest.approx(analytic, rel=0.03)

    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=0, max_value=100))
    @settings(max_examples=15, deadline=None)
    def test_agreement_property(self, n_conductors, seed):
        rng = np.random.default_rng(seed)
        medians = rng.uniform(10.0, 1000.0, size=n_conductors)
        em = EMParameters()
        analytic = expected_em_lifetime(medians, em)
        mc = simulate_array_lifetime(medians, trials=1500, em=em, rng=seed)
        assert mc.median == pytest.approx(analytic, rel=0.08)
