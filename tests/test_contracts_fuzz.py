"""Property-based fuzz harness for the physics-contract layer.

Seeded NumPy-RNG fuzzing (deterministic, no external dependency): random
stackups, workloads and fault plans are solved and every result must
either satisfy the invariant catalog or carry its violations in a
machine-readable :class:`ContractReport` / typed error — never a silent
bad number.  The point budget scales with the ``REPRO_FUZZ_POINTS``
environment variable (CI exports 1000; the local default keeps the
tier-1 suite fast).
"""

import os

import numpy as np
import pytest

from repro.config.stackups import PadAllocation, ProcessorSpec, StackConfig, few_tsv
from repro.contracts import absolute_residual, check_em_monotonicity, fixed_point
from repro.errors import ContractViolationError
from repro.faults import FaultPlan
from repro.pdn.regular3d import RegularPDN3D
from repro.pdn.stacked3d import StackedPDN3D

from tests.conftest import TEST_GRID

#: Total fuzz budget; CI raises this to >= 1000.
FUZZ_POINTS = int(os.environ.get("REPRO_FUZZ_POINTS", "150"))
SEED = 20260805


def _budget(fraction: float, floor: int = 8) -> int:
    return max(floor, int(FUZZ_POINTS * fraction))


def _stack(n_layers: int) -> StackConfig:
    return StackConfig(
        n_layers=n_layers,
        processor=ProcessorSpec(),
        tsv_topology=few_tsv(),
        pads=PadAllocation(power_fraction=0.25),
        grid_nodes=TEST_GRID,
    )


# ----------------------------------------------------------------------
# PDN solves: clean networks must pass, faulted ones must report
# ----------------------------------------------------------------------
class TestPDNFuzz:
    def test_random_workloads_on_clean_networks_pass_contracts(self):
        rng = np.random.default_rng(SEED)
        pdns = [
            RegularPDN3D(_stack(2)),
            RegularPDN3D(_stack(4)),
            StackedPDN3D(_stack(2), converters_per_core=4),
            StackedPDN3D(_stack(4), converters_per_core=4),
            StackedPDN3D(_stack(4), converters_per_core=8),
        ]
        for _ in range(_budget(0.2)):
            pdn = pdns[rng.integers(len(pdns))]
            activities = rng.uniform(0.0, 1.0, pdn.stack.n_layers)
            result = pdn.solve(layer_activities=activities)
            report = result.contracts
            assert report is not None
            # A pristine resistive/SC network must satisfy every
            # invariant — a failure here is a genuine solver bug.
            assert report.passed, report.summary()
            assert not result.degraded

    def test_random_fault_plans_report_never_hide(self, recwarn):
        rng = np.random.default_rng(SEED + 1)
        unreported = 0
        for i in range(_budget(0.1)):
            pdn = StackedPDN3D(_stack(4), converters_per_core=4)
            rail = int(rng.integers(1, 4))
            plan = FaultPlan().open_converter_bank(f"sc.rail{rail}")
            if rng.random() < 0.5:
                tags = [t for t in pdn.fault_tags() if t.startswith("tsv")]
                plan = plan.degrade_conductors(
                    tags[int(rng.integers(len(tags)))],
                    branch=0,
                    factor=float(rng.uniform(2, 20)),
                )
            pdn.apply_faults(plan)
            activities = rng.uniform(0.0, 1.0, 4)
            try:
                result = pdn.solve(layer_activities=activities)
            except ContractViolationError as exc:
                # Reported loudly: acceptable, report must ride along.
                assert exc.report is not None
                continue
            report = result.contracts
            assert report is not None
            # Faulted solves are checked as degraded: any violation is
            # recorded in the report, never raised or silently dropped.
            assert report.degraded
            if not report.passed:
                assert report.violations(), "violation lost from report"
            if report.passed and result.diagnostics is not None:
                # Nothing flagged anywhere -> must be a genuinely clean
                # solve, not a swallowed failure.
                unreported += int(
                    not np.all(np.isfinite(result.solution.node_voltage))
                )
        assert unreported == 0

    def test_nan_workloads_rejected_with_typed_error(self):
        from repro.errors import ReproError

        rng = np.random.default_rng(SEED + 2)
        pdn = StackedPDN3D(_stack(4), converters_per_core=4)
        for _ in range(_budget(0.05)):
            activities = rng.uniform(0.0, 1.0, 4)
            bad = int(rng.integers(4))
            activities[bad] = rng.choice([np.nan, np.inf, -np.inf])
            with pytest.raises(ReproError, match=f"layer_activities\\[{bad}\\]"):
                pdn.solve(layer_activities=activities)


# ----------------------------------------------------------------------
# fixed-point driver: contraction maps converge, expansions degrade
# ----------------------------------------------------------------------
class TestDriverFuzz:
    def test_random_contractions_converge(self):
        rng = np.random.default_rng(SEED + 3)
        for _ in range(_budget(0.5)):
            n = int(rng.integers(1, 5))
            a = rng.standard_normal((n, n))
            radius = max(np.abs(np.linalg.eigvals(a)))
            a *= rng.uniform(0.1, 0.9) / max(radius, 1e-12)
            b = rng.standard_normal(n)
            anderson = int(rng.integers(0, 3))
            # Absolute residual: the relative metric spikes when an
            # iterate component crosses zero, which is measurement noise
            # here, not divergence.
            fp = fixed_point(
                lambda x: a @ x + b,
                rng.standard_normal(n),
                tolerance=1e-10,
                max_iterations=2000,
                residual_fn=absolute_residual,
                anderson_m=anderson,
            )
            assert fp.converged and not fp.degraded
            exact = np.linalg.solve(np.eye(n) - a, b)
            np.testing.assert_allclose(fp.x, exact, rtol=1e-6, atol=1e-8)

    def test_random_expansions_degrade_gracefully(self):
        rng = np.random.default_rng(SEED + 4)
        for _ in range(_budget(0.25)):
            scale = rng.uniform(1.5, 4.0)
            fp = fixed_point(
                lambda x: scale * x + 1.0,
                [float(rng.uniform(0.5, 2.0))],
                tolerance=1e-10,
                max_iterations=60,
                adaptive_damping=False,
            )
            # Never an exception under on_failure="degrade": the result
            # is flagged and carries the full residual trace.
            assert not fp.converged and fp.degraded
            assert len(fp.residual_trace) == fp.iterations
            assert fp.reason


# ----------------------------------------------------------------------
# EM model: MTTF monotone in current density for random sweeps
# ----------------------------------------------------------------------
class TestEMFuzz:
    def test_random_current_sweeps_are_monotone(self):
        rng = np.random.default_rng(SEED + 5)
        for _ in range(_budget(0.15)):
            currents = rng.uniform(1e-5, 1.0, int(rng.integers(4, 32)))
            cross_section = float(rng.uniform(1e-12, 1e-9))
            report = check_em_monotonicity(
                currents=currents, cross_section=cross_section
            )
            assert report.passed, report.summary()
