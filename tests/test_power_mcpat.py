"""McPAT-lite core power model."""

import pytest

from repro.config.stackups import ProcessorSpec
from repro.power.mcpat_lite import (
    ComponentSpec,
    CorePowerModel,
    DEFAULT_CORE_COMPONENTS,
    build_core_power_model,
)


class TestDefaultComponents:
    def test_area_fractions_sum_to_one(self):
        assert sum(c.area_fraction for c in DEFAULT_CORE_COMPONENTS) == pytest.approx(1.0)

    def test_names_unique(self):
        names = [c.name for c in DEFAULT_CORE_COMPONENTS]
        assert len(set(names)) == len(names)


class TestCalibration:
    def test_core_peak_matches_processor(self):
        proc = ProcessorSpec()
        model = CorePowerModel(proc)
        assert model.core_power(1.0) == pytest.approx(proc.peak_core_power)

    def test_idle_is_leakage(self):
        proc = ProcessorSpec()
        model = CorePowerModel(proc)
        assert model.core_power(0.0) == pytest.approx(
            proc.peak_core_power * (1 - proc.dynamic_fraction)
        )

    def test_component_powers_sum_to_core(self):
        model = build_core_power_model()
        for activity in (0.0, 0.3, 1.0):
            total = sum(model.component_powers(activity).values())
            assert total == pytest.approx(model.core_power(activity))

    def test_effective_capacitance(self):
        proc = ProcessorSpec()
        model = CorePowerModel(proc)
        # P_dyn = C V^2 f at activity 1.
        p_dyn = model.core_effective_capacitance * proc.vdd**2 * proc.frequency
        assert p_dyn == pytest.approx(model.peak_dynamic_power)

    def test_component_areas(self):
        model = build_core_power_model()
        areas = model.component_areas(2.0e-6)
        assert sum(areas.values()) == pytest.approx(2.0e-6)

    def test_activity_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            build_core_power_model().core_power(1.2)


class TestValidationErrors:
    def test_bad_area_fractions_rejected(self):
        comps = [ComponentSpec("a", 0.5, 1.0, 1.0)]
        with pytest.raises(ValueError, match="sum to 1"):
            CorePowerModel(ProcessorSpec(), comps)

    def test_zero_weights_rejected(self):
        comps = [ComponentSpec("a", 1.0, 0.0, 0.0)]
        with pytest.raises(ValueError, match="weights"):
            CorePowerModel(ProcessorSpec(), comps)
