"""Solver-backend registry: equivalence, capability flags, deprecations.

Covers the backend redesign's acceptance criteria: every registered
backend agrees with ``lu`` on seeded random PDNs to <= 1e-9 relative
difference, ``spd_only`` backends raise a typed error on non-SPD
systems, unknown ``--solver`` values are a one-line ReproError (API and
CLI), the deprecated solve entry points warn exactly once, the
condition estimate is computed once per factorisation, and the engine's
structure cache keys on the backend.
"""

from __future__ import annotations

import io
import json
import pathlib
import re
import sys

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.scenarios import build_stacked_pdn
from repro.errors import NotSPDError, ReproError, SolverBackendError
from repro.grid import backends as backends_mod
from repro.grid.backends import (
    available_backends,
    backend_availability,
    default_backend_name,
    get_backend,
    register_backend,
    resolve_backend,
    set_default_backend,
    spd_screen,
)
from repro.grid.solver import SolveOptions, SolveRequest
from repro.obs.logs import configure_logging
from repro.runtime import PDNSpec, SweepEngine, SweepPoint

from tests.conftest import TEST_GRID

BACKENDS = ("lu", "cholesky", "iterative")


@pytest.fixture
def log_capture():
    """Route repro's structured JSON log lines into a StringIO."""
    stream = io.StringIO()
    configure_logging("warning", stream=stream)
    yield stream
    configure_logging("warning", stream=sys.stderr)


@pytest.fixture(autouse=True)
def _reset_default_backend():
    yield
    set_default_backend(None)


def _spd_system(n: int = 60, seed: int = 0):
    """A resistor-mesh-style SPD matrix (Laplacian + grounding shunts)."""
    rng = np.random.default_rng(seed)
    main = np.zeros(n)
    rows, cols, vals = [], [], []
    for i in range(n - 1):
        g = rng.uniform(0.5, 2.0)
        rows += [i, i + 1, i, i + 1]
        cols += [i + 1, i, i, i + 1]
        vals += [-g, -g, g, g]
    matrix = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsc()
    matrix += sp.diags(rng.uniform(0.1, 1.0, size=n)).tocsc()
    rhs = rng.standard_normal(n)
    return matrix.tocsc(), rhs


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtin_backends_registered_lu_first(self):
        names = available_backends()
        assert names[0] == "lu"
        for expected in BACKENDS:
            assert expected in names

    def test_unknown_backend_is_one_line_typed_error(self):
        with pytest.raises(SolverBackendError) as excinfo:
            get_backend("gpu-magic")
        message = str(excinfo.value)
        assert "unknown solver backend 'gpu-magic'" in message
        assert "choose from:" in message
        assert "\n" not in message
        assert isinstance(excinfo.value, ReproError)

    def test_set_default_backend_validates_and_resets(self):
        with pytest.raises(SolverBackendError):
            set_default_backend("nope")
        set_default_backend("iterative")
        assert default_backend_name() == "iterative"
        set_default_backend(None)
        assert default_backend_name() == "lu"

    def test_env_var_selects_and_validates_at_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER", "cholesky")
        assert default_backend_name() == "cholesky"
        assert resolve_backend(None).name == "cholesky"
        monkeypatch.setenv("REPRO_SOLVER", "bogus")
        with pytest.raises(SolverBackendError, match="bogus"):
            default_backend_name()

    def test_register_backend_rejects_duplicates(self):
        with pytest.raises(SolverBackendError, match="already registered"):
            register_backend(backends_mod.LUBackend())

    def test_out_of_tree_backend_registration(self):
        class EchoBackend(backends_mod.SolverBackend):
            name = "echo-test"
            description = "test double"

            def factorize(self, matrix):
                return get_backend("lu").factorize(matrix)

        register_backend(EchoBackend())
        try:
            assert "echo-test" in available_backends()
            assert resolve_backend("echo-test").description == "test double"
        finally:
            backends_mod._REGISTRY.pop("echo-test")

    def test_availability_map_covers_all_backends(self):
        availability = backend_availability()
        for name in BACKENDS:
            entry = availability[name]
            assert entry["available"] is True
            assert "native" in entry and "note" in entry


# ----------------------------------------------------------------------
# capability flags / SPD screen
# ----------------------------------------------------------------------
class TestSPDScreen:
    def test_spd_matrix_passes(self):
        matrix, _ = _spd_system()
        assert spd_screen(matrix) is None

    def test_complex_matrix_rejected(self):
        matrix = sp.identity(4, dtype=complex, format="csc")
        assert "complex" in spd_screen(matrix)

    def test_pdn_saddle_point_rejected(self, stacked_pdn):
        matrix = stacked_pdn.assembled()._matrix
        assert spd_screen(matrix) is not None

    def test_cholesky_is_spd_only_and_raises_typed_error(self, stacked_pdn):
        backend = get_backend("cholesky")
        assert backend.spd_only is True
        matrix = stacked_pdn.assembled()._matrix
        with pytest.raises(NotSPDError) as excinfo:
            backend.factorize(matrix)
        assert excinfo.value.reason
        assert isinstance(excinfo.value, ReproError)

    def test_lu_and_iterative_accept_anything(self):
        assert get_backend("lu").spd_only is False
        assert get_backend("iterative").spd_only is False
        assert get_backend("iterative").supports_refine is False


# ----------------------------------------------------------------------
# cross-backend equivalence
# ----------------------------------------------------------------------
class TestCrossBackendEquivalence:
    @pytest.mark.parametrize("seed", [7, 21, 1337])
    def test_spd_factorizations_agree(self, seed):
        matrix, rhs = _spd_system(seed=seed)
        reference = get_backend("lu").factorize(matrix).solve(rhs)
        scale = np.linalg.norm(reference)
        for name in BACKENDS[1:]:
            x = get_backend(name).factorize(matrix).solve(rhs)
            assert np.linalg.norm(x - reference) <= 1e-9 * scale, name
            residual = np.linalg.norm(matrix @ x - rhs) / np.linalg.norm(rhs)
            assert residual <= 1e-9, name

    @pytest.mark.parametrize("seed", [0, 42])
    def test_random_pdn_specs_agree_with_lu(self, seed):
        """Seeded random PDNs: every backend matches lu to <= 1e-9."""
        rng = np.random.default_rng(seed)
        n_layers = int(rng.choice([2, 4]))
        converters = int(rng.choice([4, 8]))
        results = {}
        for name in BACKENDS:
            pdn = build_stacked_pdn(
                n_layers=n_layers,
                converters_per_core=converters,
                grid_nodes=TEST_GRID,
            )
            asm = pdn.assembled(backend=name)
            assert asm.backend.name == name
            solution = asm.solve(
                SolveRequest(options=SolveOptions(backend=name))
            )
            results[name] = solution.node_voltage.copy()
        reference = results["lu"]
        scale = np.linalg.norm(reference)
        for name in BACKENDS[1:]:
            assert np.linalg.norm(results[name] - reference) <= 1e-9 * scale

    def test_cholesky_on_pdn_falls_back_to_lu_with_notice(
        self, log_capture
    ):
        """Non-SPD PDN + cholesky degrades in-rung with one log line."""
        backends_mod._NOTICED.clear()
        pdn = build_stacked_pdn(
            n_layers=2, converters_per_core=4, grid_nodes=TEST_GRID
        )
        asm = pdn.assembled(backend="cholesky")
        solution = asm.solve(SolveRequest())
        assert np.all(np.isfinite(solution.node_voltage))
        lines = [
            json.loads(line)
            for line in log_capture.getvalue().splitlines()
            if "lu-fallback" in line
        ]
        assert len(lines) == 1
        assert lines[0]["notice"] == "cholesky-lu-fallback"
        # A second solve must not repeat the notice.
        asm.solve(SolveRequest())
        repeats = [
            line for line in log_capture.getvalue().splitlines()
            if "cholesky-lu-fallback" in line
        ]
        assert len(repeats) == 1

    def test_solve_time_failure_escalates_to_lu_rung(self):
        """A backend whose *solve* fails climbs to an explicit lu rung.

        Factorize-time failures degrade in-rung (previous test); a
        solve-time failure must escalate to lu before any structural
        surgery, so resilient results are never worse than lu's.
        """

        class DudFactorization(backends_mod.Factorization):
            def solve(self, z):
                raise RuntimeError("deliberate solve-time failure")

            def solve_transpose(self, z):
                raise RuntimeError("deliberate solve-time failure")

        class DudBackend(backends_mod.SolverBackend):
            name = "dud-test"
            description = "factorizes fine, never solves"

            def factorize(self, matrix):
                return DudFactorization(matrix)

        register_backend(DudBackend())
        try:
            pdn = build_stacked_pdn(
                n_layers=2, converters_per_core=4, grid_nodes=TEST_GRID
            )
            reference = pdn.assembled().solve(SolveRequest()).node_voltage
            asm = pdn.assembled(backend="dud-test")
            solution = asm.solve(
                SolveRequest(
                    options=SolveOptions(backend="dud-test", resilient=True)
                )
            )
            diag = solution.diagnostics
            assert diag.backend == "dud-test"
            assert "lu" in diag.escalations
            np.testing.assert_array_equal(
                solution.node_voltage, reference
            )
        finally:
            backends_mod._REGISTRY.pop("dud-test")


# ----------------------------------------------------------------------
# condition-estimate caching (the bugfix satellite)
# ----------------------------------------------------------------------
class TestConditionEstimateCache:
    def test_estimate_computed_once_per_factorization(self):
        matrix, _ = _spd_system()
        fact = get_backend("lu").factorize(matrix)
        calls = {"n": 0}
        original = fact._estimate_condition

        def counting():
            calls["n"] += 1
            return original()

        fact._estimate_condition = counting
        first = fact.condition_estimate()
        second = fact.condition_estimate()
        assert first == second
        assert first is not None and first >= 1.0
        assert calls["n"] == 1

    def test_none_result_is_also_cached(self):
        matrix, _ = _spd_system(n=1)
        fact = get_backend("lu").factorize(matrix)
        assert fact.condition_estimate() is None
        assert fact._condition is None  # cached, not _UNSET


# ----------------------------------------------------------------------
# deprecated entry points
# ----------------------------------------------------------------------
class TestDeprecatedEntryPoints:
    def test_legacy_kwargs_warn_exactly_once(self, log_capture):
        from repro.grid import solver as solver_mod

        solver_mod._DEPRECATION_WARNED.clear()
        pdn = build_stacked_pdn(
            n_layers=2, converters_per_core=4, grid_nodes=TEST_GRID
        )
        asm = pdn.assembled()
        currents = np.array(asm.circuit.store("isource").column("current"))
        asm.solve(isource_current=currents)
        asm.solve(isource_current=currents)  # second call: no new warning
        lines = [
            json.loads(line)
            for line in log_capture.getvalue().splitlines()
            if "deprecated" in line
        ]
        assert len(lines) == 1
        assert "SolveRequest" in lines[0]["msg"]

    def test_solve_batch_warns_once_and_still_works(self, log_capture):
        from repro.grid import solver as solver_mod

        solver_mod._DEPRECATION_WARNED.clear()
        pdn = build_stacked_pdn(
            n_layers=2, converters_per_core=4, grid_nodes=TEST_GRID
        )
        asm = pdn.assembled()
        solutions = asm.solve_batch(isource_currents=[None, None])
        assert len(solutions) == 2
        asm.solve_batch(isource_currents=[None])
        lines = [
            line for line in log_capture.getvalue().splitlines()
            if "deprecated" in line
        ]
        assert len(lines) == 1

    def test_bare_request_solve_does_not_warn(self, log_capture):
        from repro.grid import solver as solver_mod

        solver_mod._DEPRECATION_WARNED.clear()
        pdn = build_stacked_pdn(
            n_layers=2, converters_per_core=4, grid_nodes=TEST_GRID
        )
        pdn.assembled().solve(SolveRequest())
        assert "deprecated" not in log_capture.getvalue()

    def test_no_deprecated_callers_left_in_src(self):
        """No code under src/ may use the legacy solve entry points."""
        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        offenders = []
        for path in sorted(src.rglob("*.py")):
            text = path.read_text()
            if path.name == "solver.py":
                continue  # defines the wrappers
            if re.search(r"\.solve\(\s*isource_current\s*=", text):
                offenders.append(f"{path.name}: legacy solve kwargs")
            if re.search(r"assembled(\(\))?\.solve_batch\(", text):
                offenders.append(f"{path.name}: AssembledCircuit.solve_batch")
            if re.search(r"\brun_fig\d", text):
                offenders.append(f"{path.name}: run_fig shim reference")
        assert offenders == []


# ----------------------------------------------------------------------
# engine integration
# ----------------------------------------------------------------------
class TestEngineBackendThreading:
    def test_structure_cache_keys_on_backend(self):
        spec = PDNSpec.stacked(2, converters_per_core=4, grid_nodes=TEST_GRID)
        points = [SweepPoint(spec=spec, layer_activities=(1.0, 1.0))]
        engine = SweepEngine()
        first = engine.run(points)
        assert first.metrics.solver == "lu"
        assert engine.cache_info()["misses"] == 1

        set_default_backend("iterative")
        second = engine.run(points)
        assert second.metrics.solver == "iterative"
        # Different backend => different group key => a fresh miss.
        assert engine.cache_info()["misses"] == 2
        group = second.metrics.groups[0]
        assert group.backend == "iterative"
        assert group.key.endswith("@iterative")
        assert "iterative" in second.metrics.escalation_histogram()

        set_default_backend(None)
        third = engine.run(points)
        assert engine.cache_info()["hits"] == 1  # lu entry still cached
        assert third.metrics.groups[0].backend == "lu"

    def test_default_run_bench_payload_reports_solver(self):
        spec = PDNSpec.stacked(2, converters_per_core=4, grid_nodes=TEST_GRID)
        run = SweepEngine().run([SweepPoint(spec=spec)])
        payload = run.metrics.to_json()
        assert payload["solver"] == "lu"
        assert payload["groups"][0]["backend"] == "lu"

    def test_fingerprints_stable_for_lu_and_distinct_otherwise(self):
        from repro.runtime.engine import group_points
        from repro.runtime.fingerprint import task_fingerprint

        spec = PDNSpec.stacked(2, converters_per_core=4, grid_nodes=TEST_GRID)
        points = [SweepPoint(spec=spec)]
        (lu_key, members), = group_points(points, "lu").items()
        # The default backend is omitted from the fingerprint so journals
        # from pre-backend runs still resume.
        legacy_key = (lu_key[0], lu_key[1], lu_key[2])
        assert task_fingerprint(lu_key, members) == task_fingerprint(
            legacy_key, members
        )
        (it_key, it_members), = group_points(points, "iterative").items()
        assert task_fingerprint(it_key, it_members) != task_fingerprint(
            lu_key, members
        )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestSolverCLI:
    def test_every_subcommand_accepts_solver_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["fig6", "--grid", str(TEST_GRID), "--solver", "cholesky"]
        )
        assert args.solver == "cholesky"

    def test_unknown_solver_is_one_line_cli_error(self, capsys):
        from repro.cli import main

        code = main(["table1", "--solver", "warp-drive"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "SolverBackendError" in err
        assert "warp-drive" in err

    def test_solver_flag_runs_and_does_not_leak(self, capsys):
        from repro.cli import main

        code = main(["table1", "--solver", "iterative"])
        assert code == 0
        assert "Table 1" in capsys.readouterr().out
        # The process-global override is reset after the invocation.
        assert default_backend_name() == "lu"
