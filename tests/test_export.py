"""CSV / JSON export helpers."""

import csv
import json

import numpy as np
import pytest

from repro.analysis.export import (
    export_json,
    export_series_csv,
    export_table_csv,
    fig6_to_csv,
    fig8_to_csv,
)


class TestSeriesCsv:
    def test_roundtrip(self, tmp_path):
        path = export_series_csv(
            tmp_path / "s.csv",
            "x",
            [0.0, 1.0],
            {"a": [1.0, 2.0], "b": [None, 4.0]},
        )
        rows = list(csv.reader(path.open()))
        assert rows[0] == ["x", "a", "b"]
        assert rows[1] == ["0.0", "1.0", ""]
        assert rows[2] == ["1.0", "2.0", "4.0"]

    def test_length_mismatch_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            export_series_csv(tmp_path / "s.csv", "x", [0.0], {"a": [1.0, 2.0]})


class TestTableCsv:
    def test_roundtrip(self, tmp_path):
        path = export_table_csv(
            tmp_path / "t.csv", ["k", "v"], [("a", 1), ("b", None)]
        )
        rows = list(csv.reader(path.open()))
        assert rows == [["k", "v"], ["a", "1"], ["b", ""]]

    def test_bad_row_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            export_table_csv(tmp_path / "t.csv", ["k"], [("a", 1)])


class TestJson:
    def test_numpy_coercion(self, tmp_path):
        path = export_json(
            tmp_path / "d.json",
            {"scalar": np.float64(1.5), "arr": np.arange(3)},
        )
        data = json.loads(path.read_text())
        assert data == {"scalar": 1.5, "arr": [0, 1, 2]}

    def test_unserialisable_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            export_json(tmp_path / "d.json", {"bad": object()})


class TestFigureExports:
    def test_fig6(self, tmp_path):
        from repro.core.experiments import compute_fig6

        result = compute_fig6(
            n_layers=2, imbalances=(0.0, 0.5), converters_per_core=(4,), grid_nodes=8
        )
        path = fig6_to_csv(result, tmp_path / "fig6.csv")
        rows = list(csv.reader(path.open()))
        assert rows[0][0] == "imbalance"
        assert len(rows) == 3

    def test_fig8(self, tmp_path):
        from repro.core.experiments import compute_fig8

        result = compute_fig8(
            n_layers=2, imbalances=(0.1, 0.5), converters_per_core=(4,), grid_nodes=8
        )
        path = fig8_to_csv(result, tmp_path / "fig8.csv")
        rows = list(csv.reader(path.open()))
        assert rows[0] == ["imbalance", "vs_4_conv_per_core", "regular_sc_all_power"]
        assert len(rows) == 3
