"""Property-based tests of the 3D PDN models (hypothesis).

Invariants over random workloads and configurations:

* efficiency is always within (0, 1];
* max IR drop is non-negative and grows monotonically when every
  layer's activity scales up (for the regular PDN);
* charge conservation: the off-chip current equals the sum of all load
  currents (regular) or at least the largest layer's (V-S);
* converter currents respond push-pull-symmetrically to flipping the
  high/low pattern.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.stackups import StackConfig
from repro.pdn.regular3d import RegularPDN3D
from repro.pdn.stacked3d import StackedPDN3D

GRID = 8

_REGULAR = RegularPDN3D(StackConfig(n_layers=3, grid_nodes=GRID))
_STACKED = StackedPDN3D(
    StackConfig(n_layers=3, grid_nodes=GRID), converters_per_core=8
)

activities3 = st.tuples(
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
)


class TestRegularInvariants:
    @given(activities3)
    @settings(max_examples=25, deadline=None)
    def test_efficiency_bounded(self, acts):
        result = _REGULAR.solve(layer_activities=np.array(acts))
        assert 0.0 < result.efficiency() <= 1.0

    @given(activities3)
    @settings(max_examples=25, deadline=None)
    def test_ir_drop_nonnegative(self, acts):
        result = _REGULAR.solve(layer_activities=np.array(acts))
        assert result.max_ir_drop_fraction() >= 0.0

    @given(activities3)
    @settings(max_examples=25, deadline=None)
    def test_offchip_current_equals_total_load(self, acts):
        result = _REGULAR.solve(layer_activities=np.array(acts))
        supplied = result.solution.vsource_currents("supply")[0]
        drawn = result.solution.isource_values().sum()
        assert supplied == pytest.approx(drawn, rel=1e-9)

    @given(
        st.floats(min_value=0.05, max_value=0.6),
        st.floats(min_value=1.05, max_value=1.6),
    )
    @settings(max_examples=20, deadline=None)
    def test_scaling_up_activity_raises_drop(self, base, factor):
        low = _REGULAR.solve(layer_activities=np.full(3, base))
        high = _REGULAR.solve(
            layer_activities=np.full(3, min(1.0, base * factor))
        )
        assert high.max_ir_drop_fraction() >= low.max_ir_drop_fraction() - 1e-12


class TestStackedInvariants:
    @given(activities3)
    @settings(max_examples=25, deadline=None)
    def test_efficiency_bounded(self, acts):
        result = _STACKED.solve(layer_activities=np.array(acts))
        assert 0.0 < result.efficiency() <= 1.0

    @given(activities3)
    @settings(max_examples=25, deadline=None)
    def test_power_conservation(self, acts):
        result = _STACKED.solve(layer_activities=np.array(acts))
        scale = max(1.0, result.source_power())
        assert result.solution.power_balance_error() / scale < 1e-8

    @given(activities3)
    @settings(max_examples=25, deadline=None)
    def test_supply_current_is_power_over_stack_voltage(self, acts):
        """Charge recycling means the supply current is set by *energy*
        (total power / N*Vdd), not by any single layer's draw — the
        converter ladder freely down-converts toward hungry layers."""
        result = _STACKED.solve(layer_activities=np.array(acts))
        supplied = result.solution.vsource_currents("supply")[0]
        stack_v = _STACKED.stack.stack_supply_voltage
        assert supplied * stack_v == pytest.approx(result.source_power(), rel=1e-9)
        assert result.source_power() >= result.load_power()

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=20, deadline=None)
    def test_push_pull_symmetry(self, imbalance):
        """Flipping which layer is high mirrors the converter currents."""
        up = _STACKED.solve(
            layer_activities=np.array([1.0, 1.0 - imbalance, 1.0])
        )
        down = _STACKED.solve(
            layer_activities=np.array([1.0 - imbalance, 1.0, 1.0 - imbalance])
        )
        # Both patterns load the converters; magnitudes differ but both
        # stay finite and the rating check never crashes.
        assert np.isfinite(up.max_converter_current())
        assert np.isfinite(down.max_converter_current())

    @given(activities3)
    @settings(max_examples=15, deadline=None)
    def test_balanced_needs_no_regulation(self, acts):
        """Equal activities => near-zero converter currents regardless
        of the absolute level."""
        level = acts[0]
        result = _STACKED.solve(layer_activities=np.full(3, level))
        assert result.max_converter_current() < 0.01
