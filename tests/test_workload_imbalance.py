"""Imbalance definitions and the Fig. 6 stress pattern."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.stackups import ProcessorSpec
from repro.workload.imbalance import (
    adjacent_imbalances,
    imbalance_ratio,
    interleaved_layer_activities,
    layer_powers_from_activities,
)


class TestImbalanceRatio:
    def test_idle_low_layer_is_full_imbalance(self):
        assert imbalance_ratio(10.0, 0.0) == pytest.approx(1.0)

    def test_equal_layers_is_zero(self):
        assert imbalance_ratio(5.0, 5.0) == 0.0

    def test_symmetric_in_arguments(self):
        assert imbalance_ratio(4.0, 8.0) == imbalance_ratio(8.0, 4.0)

    def test_both_idle_is_zero(self):
        assert imbalance_ratio(0.0, 0.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            imbalance_ratio(-1.0, 2.0)

    @given(
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_always_a_fraction(self, a, b):
        assert 0.0 <= imbalance_ratio(a, b) <= 1.0


class TestAdjacentImbalances:
    def test_length(self):
        assert len(adjacent_imbalances([1.0, 2.0, 3.0])) == 2

    def test_values(self):
        out = adjacent_imbalances([10.0, 5.0])
        assert out[0] == pytest.approx(0.5)

    def test_needs_two_layers(self):
        with pytest.raises(ValueError):
            adjacent_imbalances([1.0])


class TestInterleavedPattern:
    def test_zero_imbalance_all_active(self):
        acts = interleaved_layer_activities(4, 0.0)
        assert np.all(acts == 1.0)

    def test_full_imbalance_idles_alternate_layers(self):
        acts = interleaved_layer_activities(4, 1.0)
        assert list(acts) == [1.0, 0.0, 1.0, 0.0]

    def test_partial(self):
        acts = interleaved_layer_activities(6, 0.3)
        assert acts[0] == 1.0
        assert acts[1] == pytest.approx(0.7)

    def test_every_adjacent_pair_stressed_equally(self):
        proc = ProcessorSpec()
        acts = interleaved_layer_activities(8, 0.4)
        dynamic = acts * proc.dynamic_power
        imbalances = adjacent_imbalances(dynamic)
        assert np.allclose(imbalances, 0.4)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            interleaved_layer_activities(4, 1.2)


class TestLayerPowers:
    def test_matches_processor_model(self):
        proc = ProcessorSpec()
        powers = layer_powers_from_activities(proc, [0.0, 1.0])
        assert powers[0] == pytest.approx(proc.leakage_power)
        assert powers[1] == pytest.approx(proc.peak_power)
