"""FaultPlan construction, application and bookkeeping."""

import numpy as np
import pytest

from repro.errors import FaultInjectionError
from repro.faults import (
    FaultPlan,
    em_fault_plan,
    severed_layer_plan,
    uniform_fault_plan,
)
from repro.grid.netlist import CONVERTER, RESISTOR
from repro.pdn.pads import C4_VDD_TAG, THROUGH_VIA_KEY
from repro.pdn.regular3d import RegularPDN3D
from repro.pdn.stacked3d import StackedPDN3D
from repro.pdn.tsv import rail_tag, tier_tag


class TestPlanConstruction:
    def test_plans_are_iterable_and_sized(self):
        plan = FaultPlan().fail_conductors("tsv.vdd.t0", 3).fail_converters(
            "sc.rail1", 0
        )
        assert len(plan) == 2
        kinds = [f.kind for f in plan]
        assert kinds == ["conductor", "converter"]

    def test_bad_counts_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan().fail_conductors("t", 0, count=0)
        with pytest.raises(FaultInjectionError):
            FaultPlan().degrade_conductors("t", 0, factor=0.0)

    def test_extend_merges_plans(self):
        a = FaultPlan().fail_conductors("x", 0)
        b = FaultPlan().fail_converters("y", 1)
        a.extend(b)
        assert len(a) == 2

    def test_unknown_tag_rejected_at_apply(self, small_stack):
        pdn = RegularPDN3D(small_stack)
        with pytest.raises(FaultInjectionError, match="no-such-tag"):
            pdn.apply_faults(FaultPlan().fail_conductors("no-such-tag", 0))


class TestConductorFaults:
    def test_partial_failure_degrades_resistance(self, small_stack):
        pdn = RegularPDN3D(small_stack)
        tag = tier_tag("vdd", 0)
        group = pdn.conductor_groups[tag]
        branch = int(np.argmax(group.multiplicity > 1))
        m = int(group.multiplicity[branch])
        store = pdn.circuit.store(RESISTOR)
        idx = int(group.ref.indices[branch])
        before = store.column("resistance")[idx]
        pdn.apply_faults(FaultPlan().fail_conductors(tag, branch, count=1))
        after = pdn.circuit.store(RESISTOR).column("resistance")[idx]
        assert after == pytest.approx(before * m / (m - 1))
        # Bookkeeping: the group's multiplicity shrank by one.
        assert pdn.conductor_groups[tag].multiplicity[branch] == m - 1

    def test_full_bundle_failure_opens_branch(self, small_stack):
        pdn = RegularPDN3D(small_stack)
        tag = tier_tag("gnd", 0)
        group = pdn.conductor_groups[tag]
        m = int(group.multiplicity[0])
        report = pdn.apply_faults(FaultPlan().fail_conductors(tag, 0, count=m))
        assert report.n_opened_branches == 1
        idx = int(group.ref.indices[0])
        assert not pdn.circuit.active_mask(RESISTOR)[idx]
        assert pdn.conductor_groups[tag].multiplicity[0] == 0

    def test_overkill_rejected(self, small_stack):
        pdn = RegularPDN3D(small_stack)
        tag = tier_tag("vdd", 0)
        m = int(pdn.conductor_groups[tag].multiplicity[0])
        with pytest.raises(FaultInjectionError, match="only"):
            pdn.apply_faults(FaultPlan().fail_conductors(tag, 0, count=m + 1))

    def test_aliased_groups_share_population(self, small_stack):
        # The V-S through-via registry key addresses the same physical
        # branches as the c4.vdd group; killing via one key must be
        # visible through the other.
        pdn = StackedPDN3D(small_stack, converters_per_core=4)
        m = int(pdn.conductor_groups[THROUGH_VIA_KEY].multiplicity[0])
        pdn.apply_faults(FaultPlan().fail_conductors(THROUGH_VIA_KEY, 0, count=1))
        assert pdn.conductor_groups[C4_VDD_TAG].multiplicity[0] == m - 1
        assert pdn.conductor_groups[THROUGH_VIA_KEY].multiplicity[0] == m - 1

    def test_faulted_pdn_still_solves(self, small_stack):
        pdn = RegularPDN3D(small_stack)
        baseline = pdn.solve().max_ir_drop_fraction()
        tag = tier_tag("vdd", 0)
        plan = FaultPlan()
        for branch in range(len(pdn.conductor_groups[tag].multiplicity)):
            plan.fail_conductors(tag, branch, count=1)
        pdn.apply_faults(plan)
        assert pdn.faulted
        result = pdn.solve()
        # Fewer TSVs -> strictly worse (or equal) droop, still finite.
        assert result.max_ir_drop_fraction() >= baseline
        assert np.isfinite(result.max_ir_drop_fraction())


class TestConverterFaults:
    def test_partial_bank_failure_scales_r_series(self, small_stack):
        pdn = StackedPDN3D(small_stack, converters_per_core=16)
        store = pdn.circuit.store(CONVERTER)
        indices = store.tag_indices("sc.rail1")
        mult = pdn.converter_multiplicity[indices]
        branch = int(np.argmax(mult > 1))
        assert mult[branch] > 1, "need a bundled converter branch"
        cm = int(mult[branch])
        idx = int(indices[branch])
        before = store.column("r_series")[idx]
        pdn.apply_faults(FaultPlan().fail_converters("sc.rail1", branch, count=1))
        after = pdn.circuit.store(CONVERTER).column("r_series")[idx]
        assert after == pytest.approx(before * cm / (cm - 1))
        assert pdn.converter_multiplicity[idx] == cm - 1

    def test_full_bank_failure_opens_converter(self, small_stack):
        pdn = StackedPDN3D(small_stack, converters_per_core=4)
        cm = int(pdn.converter_multiplicity[0])
        report = pdn.apply_faults(
            FaultPlan().fail_converters("sc.rail1", 0, count=cm)
        )
        assert report.n_failed_converters == cm
        assert not pdn.circuit.active_mask(CONVERTER)[0]
        result = pdn.solve()
        assert np.isfinite(result.max_ir_drop_fraction())


class TestSamplers:
    def test_uniform_plan_scales_with_fraction(self, small_stack):
        pdn = RegularPDN3D(small_stack)
        lo = uniform_fault_plan(pdn, 0.02, rng=0)
        hi = uniform_fault_plan(pdn, 0.5, rng=0)
        assert len(hi) > len(lo)

    def test_uniform_plan_zero_fraction_empty(self, small_stack):
        pdn = RegularPDN3D(small_stack)
        assert len(uniform_fault_plan(pdn, 0.0, rng=0)) == 0

    def test_uniform_plan_reproducible(self, small_stack):
        pdn = RegularPDN3D(small_stack)
        a = uniform_fault_plan(pdn, 0.1, rng=42)
        b = uniform_fault_plan(pdn, 0.1, rng=42)
        assert list(a) == list(b)

    def test_uniform_unknown_prefix_rejected(self, small_stack):
        pdn = RegularPDN3D(small_stack)
        with pytest.raises(FaultInjectionError, match="prefixes"):
            uniform_fault_plan(pdn, 0.1, prefixes=("nope",))

    def test_em_plan_fails_more_at_later_times(self, regular_result):
        # Per-conductor median lifetimes at these tiny currents are
        # astronomically long; push far past them so the CDF saturates.
        early = em_fault_plan(regular_result, at_time=1.0, rng=1)
        late = em_fault_plan(regular_result, at_time=1e40, rng=1)
        assert len(early) == 0
        assert len(late) > len(early)

    def test_severed_layer_plan_targets_interfaces(self, small_stack):
        pdn = StackedPDN3D(small_stack, converters_per_core=4)
        plan = severed_layer_plan(pdn, layer=1)
        tags = {f.tag for f in plan}
        assert rail_tag(1) in tags
        assert C4_VDD_TAG in tags  # top layer's supply interface
        assert "sc.rail1" in tags

    def test_severed_layer_bad_index(self, small_stack):
        pdn = RegularPDN3D(small_stack)
        with pytest.raises(FaultInjectionError, match="outside"):
            severed_layer_plan(pdn, layer=9)
