"""Synthetic PARSEC profiles and their calibration anchors."""

import numpy as np
import pytest

from repro.config.stackups import ProcessorSpec
from repro.workload.parsec import (
    PARSEC_APPLICATIONS,
    ApplicationProfile,
    average_max_imbalance,
    sample_application_powers,
)


class TestSuiteCalibration:
    def test_thirteen_applications(self):
        assert len(PARSEC_APPLICATIONS) == 13

    def test_blackscholes_is_best_case(self):
        # Paper: blackscholes shows ~10% max imbalance.
        assert PARSEC_APPLICATIONS["blackscholes"].max_imbalance == pytest.approx(0.10)
        assert min(a.max_imbalance for a in PARSEC_APPLICATIONS.values()) == pytest.approx(0.10)

    def test_suite_max_exceeds_90_percent(self):
        assert max(a.max_imbalance for a in PARSEC_APPLICATIONS.values()) > 0.90

    def test_average_is_65_percent(self):
        # Paper: "the applications have a maximum-imbalance ratio of 65%".
        assert average_max_imbalance() == pytest.approx(0.65, abs=0.01)

    def test_average_rejects_empty(self):
        with pytest.raises(ValueError):
            average_max_imbalance([])


class TestApplicationProfile:
    def test_activity_range(self):
        app = ApplicationProfile("toy", activity_max=0.8, max_imbalance=0.25)
        assert app.activity_min == pytest.approx(0.6)

    def test_samples_respect_range(self):
        app = PARSEC_APPLICATIONS["x264"]
        samples = app.sample_activities(500, rng=1)
        assert samples.min() >= app.activity_min - 1e-12
        assert samples.max() <= app.activity_max + 1e-12

    def test_sampling_is_reproducible(self):
        app = PARSEC_APPLICATIONS["dedup"]
        a = app.sample_activities(100, rng=42)
        b = app.sample_activities(100, rng=42)
        assert np.array_equal(a, b)

    def test_sample_powers_above_leakage(self):
        proc = ProcessorSpec()
        powers = PARSEC_APPLICATIONS["canneal"].sample_powers(proc, 200, rng=0)
        assert powers.min() >= proc.leakage_power
        assert powers.max() <= proc.peak_power + 1e-9

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            PARSEC_APPLICATIONS["vips"].sample_activities(0)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            ApplicationProfile("bad", activity_max=0.8, max_imbalance=0.2, alpha=0.0)


class TestSuiteSampling:
    def test_all_apps_sampled(self):
        powers = sample_application_powers(ProcessorSpec(), n_samples=50, rng=7)
        assert set(powers) == set(PARSEC_APPLICATIONS)
        assert all(len(p) == 50 for p in powers.values())

    def test_observed_max_imbalance_tracks_target(self):
        """With 1000 samples the empirical range approaches the profile's
        calibrated max imbalance."""
        proc = ProcessorSpec()
        powers = sample_application_powers(proc, n_samples=1000, rng=3)
        for name, profile in PARSEC_APPLICATIONS.items():
            dynamic = powers[name] - proc.leakage_power
            observed = (dynamic.max() - dynamic.min()) / dynamic.max()
            assert observed <= profile.max_imbalance + 1e-9
            assert observed >= profile.max_imbalance * 0.6
