"""Unit helpers: conversions and engineering formatting."""


import pytest

from repro.utils.units import (
    format_engineering,
    from_micro,
    from_milli,
    from_nano,
    to_micro,
    to_milli,
    to_nano,
    to_percent,
)


class TestConversions:
    def test_from_micro(self):
        assert from_micro(200.0) == pytest.approx(200e-6)

    def test_from_milli(self):
        assert from_milli(10.0) == pytest.approx(0.01)

    def test_from_nano(self):
        assert from_nano(8.0) == pytest.approx(8e-9)

    def test_micro_roundtrip(self):
        assert to_micro(from_micro(44.539)) == pytest.approx(44.539)

    def test_milli_roundtrip(self):
        assert to_milli(from_milli(3.3)) == pytest.approx(3.3)

    def test_nano_roundtrip(self):
        assert to_nano(from_nano(2.5)) == pytest.approx(2.5)

    def test_to_percent(self):
        assert to_percent(0.242) == pytest.approx(24.2)


class TestFormatEngineering:
    def test_milli_ohms(self):
        assert format_engineering(0.0445, "Ohm") == "44.5 mOhm"

    def test_nano_farads(self):
        assert format_engineering(8e-9, "F") == "8 nF"

    def test_zero(self):
        assert format_engineering(0.0, "V") == "0 V"

    def test_unit_less(self):
        assert format_engineering(1500.0) == "1.5 k"

    def test_plain_range(self):
        assert format_engineering(3.3, "V") == "3.3 V"

    def test_negative_value(self):
        assert format_engineering(-0.02, "A") == "-20 mA"

    def test_mega(self):
        assert format_engineering(50e6, "Hz") == "50 MHz"

    def test_digits_control(self):
        assert format_engineering(0.044539, "Ohm", digits=4) == "44.54 mOhm"
