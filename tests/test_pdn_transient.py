"""Transient PDN analysis: load-step droop."""

import numpy as np
import pytest

from repro.core.scenarios import build_regular_pdn, build_stacked_pdn
from repro.pdn.transient import TransientPDNAnalysis

GRID = 8


def regular_factory():
    return build_regular_pdn(2, grid_nodes=GRID, package_inductor_nodes=True)


def stacked_factory():
    return build_stacked_pdn(
        2, converters_per_core=4, grid_nodes=GRID, package_inductor_nodes=True
    )


@pytest.fixture(scope="module")
def regular_analysis():
    return TransientPDNAnalysis(regular_factory, dt=50e-12)


@pytest.fixture(scope="module")
def regular_trace(regular_analysis):
    return regular_analysis.load_step(warmup_steps=150, step_steps=250)


class TestLoadStep:
    def test_settles_near_nominal_before_step(self, regular_analysis, regular_trace):
        headroom = regular_analysis.supply_waveform(regular_trace)
        pre_step = headroom[regular_analysis.last_step_index - 5]
        assert pre_step == pytest.approx(1.0, abs=0.02)

    def test_step_causes_droop(self, regular_analysis, regular_trace):
        droop = regular_analysis.first_droop(regular_trace)
        assert droop > 0.0

    def test_droop_bounded(self, regular_analysis, regular_trace):
        # With decap + package the step transient stays within ~10% Vdd.
        assert regular_analysis.first_droop(regular_trace) < 0.1

    def test_package_decap_rides_through_the_step(self, regular_analysis, regular_trace):
        """With the 260 uF on-package decap, the local rail stays between
        the idle and full-load static levels while the decap discharges
        (its RC constant is far longer than the simulated window)."""
        headroom = regular_analysis.supply_waveform(regular_trace)
        static = build_regular_pdn(2, grid_nodes=GRID).solve()
        full_load_level = 1.0 - static.ir_drop_map(1)[GRID // 2, GRID // 2]
        post = headroom[regular_analysis.last_step_index + 5 :]
        assert np.all(post > full_load_level - 5e-3)
        assert post[-1] < post[0]  # decap discharging toward static

    def test_decap_only_pdn_recovers_to_static_level(self):
        """Without the package inductor/decap the grid settles to the
        full-load static IR level within a few local RC constants."""
        analysis = TransientPDNAnalysis(
            lambda: build_regular_pdn(2, grid_nodes=GRID), dt=50e-12
        )
        trace = analysis.load_step(warmup_steps=150, step_steps=400)
        headroom = analysis.supply_waveform(trace)
        static = build_regular_pdn(2, grid_nodes=GRID).solve()
        expected = 1.0 - static.ir_drop_map(1)[GRID // 2, GRID // 2]
        assert headroom[-1] == pytest.approx(expected, abs=5e-3)

    def test_stacked_pdn_also_works(self):
        analysis = TransientPDNAnalysis(stacked_factory, dt=50e-12)
        trace = analysis.load_step(warmup_steps=150, step_steps=200)
        assert 0.0 <= analysis.first_droop(trace) < 0.1

    def test_no_package_inductor_path(self):
        """Decap-only analysis (no inductor nodes) still runs."""
        analysis = TransientPDNAnalysis(
            lambda: build_regular_pdn(2, grid_nodes=GRID), dt=50e-12
        )
        trace = analysis.load_step(warmup_steps=80, step_steps=120)
        assert analysis.first_droop(trace) < 0.05


class TestConstruction:
    def test_rejects_solved_pdn(self):
        pdn = build_regular_pdn(2, grid_nodes=GRID)
        pdn.solve()
        with pytest.raises(ValueError, match="unsolved"):
            TransientPDNAnalysis(lambda: pdn)

    def test_rejects_bad_decap(self):
        with pytest.raises(ValueError):
            TransientPDNAnalysis(regular_factory, decap_per_layer=0.0)
