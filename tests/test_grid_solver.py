"""MNA solves against hand-computed circuits."""

import numpy as np
import pytest

from repro.grid.netlist import Circuit
from repro.grid.solver import SingularCircuitError


def divider(r1=1.0, r2=1.0, v=1.0):
    c = Circuit()
    c.set_ground("gnd")
    c.add_voltage_source("in", "gnd", v, tag="supply")
    c.add_resistor("in", "mid", r1, tag="top")
    c.add_resistor("mid", "gnd", r2, tag="bottom")
    return c


class TestResistiveCircuits:
    def test_voltage_divider(self):
        sol = divider(1.0, 3.0, 2.0).solve()
        assert sol.voltage("mid") == pytest.approx(1.5)

    def test_divider_currents(self):
        sol = divider(1.0, 1.0, 1.0).solve()
        assert sol.resistor_currents("top")[0] == pytest.approx(0.5)
        assert sol.vsource_currents("supply")[0] == pytest.approx(0.5)

    def test_current_source_into_resistor(self):
        c = Circuit()
        c.set_ground("gnd")
        c.add_current_source("gnd", "a", 2.0, tag="src")
        c.add_resistor("a", "gnd", 5.0)
        sol = c.solve()
        assert sol.voltage("a") == pytest.approx(10.0)

    def test_parallel_resistors(self):
        c = Circuit()
        c.set_ground("gnd")
        c.add_voltage_source("in", "gnd", 1.0)
        c.add_resistors(["in", "in"], ["gnd", "gnd"], [2.0, 2.0], tag="par")
        sol = c.solve()
        currents = sol.resistor_currents("par")
        assert currents == pytest.approx([0.5, 0.5])

    def test_wheatstone_bridge_balanced(self):
        c = Circuit()
        c.set_ground("gnd")
        c.add_voltage_source("top", "gnd", 1.0)
        c.add_resistor("top", "l", 1.0)
        c.add_resistor("top", "r", 1.0)
        c.add_resistor("l", "gnd", 1.0)
        c.add_resistor("r", "gnd", 1.0)
        c.add_resistor("l", "r", 7.0, tag="bridge")  # balanced: no current
        sol = c.solve()
        assert sol.resistor_currents("bridge")[0] == pytest.approx(0.0, abs=1e-12)

    def test_power_balance(self):
        sol = divider(2.0, 3.0, 5.0).solve()
        assert sol.power_balance_error() < 1e-9

    def test_resistor_power(self):
        sol = divider(1.0, 1.0, 2.0).solve()
        # 2 V over 2 ohm -> 1 A -> 2 W total dissipation.
        assert sol.resistor_power() == pytest.approx(2.0)


class TestConverterStamp:
    def test_output_is_midpoint_at_no_load(self):
        c = Circuit()
        c.set_ground("gnd")
        c.add_voltage_source("top", "gnd", 2.0)
        c.add_converter("top", "gnd", "mid", r_series=0.6, tag="sc")
        c.add_resistor("mid", "gnd", 1e9)  # keep the node tied
        sol = c.solve()
        assert sol.voltage("mid") == pytest.approx(1.0, abs=1e-6)

    def test_sourcing_drop_and_input_current(self):
        c = Circuit()
        c.set_ground("gnd")
        c.add_voltage_source("top", "gnd", 2.0, tag="supply")
        c.add_converter("top", "gnd", "mid", r_series=0.6, tag="sc")
        c.add_current_source("mid", "gnd", 0.1, tag="load")
        sol = c.solve()
        assert sol.voltage("mid") == pytest.approx(2.0 / 2 - 0.1 * 0.6)
        assert sol.converter_output_currents("sc")[0] == pytest.approx(0.1)
        # Ideal 2:1: the supply provides half the output current.
        assert sol.vsource_currents("supply")[0] == pytest.approx(0.05)

    def test_push_pull_sinks_excess(self):
        c = Circuit()
        c.set_ground("gnd")
        c.add_voltage_source("top", "gnd", 2.0)
        c.add_converter("top", "gnd", "mid", r_series=0.6, tag="sc")
        c.add_current_source("top", "mid", 0.4, tag="upper")
        c.add_current_source("mid", "gnd", 0.3, tag="lower")
        sol = c.solve()
        j = sol.converter_output_currents("sc")[0]
        assert j == pytest.approx(-0.1)  # sinking
        assert sol.voltage("mid") == pytest.approx(1.0 + 0.1 * 0.6)

    def test_converter_conserves_power(self):
        c = Circuit()
        c.set_ground("gnd")
        c.add_voltage_source("top", "gnd", 2.0)
        c.add_converter("top", "gnd", "mid", r_series=0.6, tag="sc")
        c.add_current_source("mid", "gnd", 0.08)
        sol = c.solve()
        assert sol.power_balance_error() < 1e-9

    def test_series_loss(self):
        c = Circuit()
        c.set_ground("gnd")
        c.add_voltage_source("top", "gnd", 2.0)
        c.add_converter("top", "gnd", "mid", r_series=0.5, tag="sc")
        c.add_current_source("mid", "gnd", 0.2)
        sol = c.solve()
        assert sol.converter_series_loss("sc") == pytest.approx(0.2**2 * 0.5)

    def test_stacked_ladder_regulates_all_rails(self):
        # 3 loads, 2 converters (Fig. 1's arrangement), balanced loads.
        c = Circuit()
        c.set_ground("r0")
        c.add_voltage_source("r3", "r0", 3.0)
        c.add_converter("r2", "r0", "r1", r_series=0.6)
        c.add_converter("r3", "r1", "r2", r_series=0.6)
        for lo, hi in [("r0", "r1"), ("r1", "r2"), ("r2", "r3")]:
            c.add_current_source(hi, lo, 0.2)
        sol = c.solve()
        assert sol.voltage("r1") == pytest.approx(1.0, abs=1e-9)
        assert sol.voltage("r2") == pytest.approx(2.0, abs=1e-9)


class TestOverridesAndReuse:
    def test_isource_override_changes_solution(self):
        c = Circuit()
        c.set_ground("gnd")
        c.add_current_source("gnd", "a", 1.0)
        c.add_resistor("a", "gnd", 2.0)
        asm = c.assemble()
        assert asm.solve().voltage("a") == pytest.approx(2.0)
        assert asm.solve(isource_current=np.array([2.0])).voltage("a") == pytest.approx(4.0)

    def test_vsource_override(self):
        c = divider()
        asm = c.assemble()
        assert asm.solve(vsource_voltage=np.array([4.0])).voltage("mid") == pytest.approx(2.0)

    def test_override_wrong_length_rejected(self):
        c = divider()
        asm = c.assemble()
        with pytest.raises(ValueError, match="length"):
            asm.solve(vsource_voltage=np.array([1.0, 2.0]))

    def test_factorisation_reused(self):
        c = divider()
        asm = c.assemble()
        asm.solve()
        lu = asm._lu
        asm.solve()
        assert asm._lu is lu


class TestSingularDetection:
    def test_floating_subnetwork_raises(self):
        c = Circuit()
        c.set_ground("gnd")
        c.add_voltage_source("in", "gnd", 1.0)
        c.add_resistor("in", "gnd", 1.0)
        c.add_resistor("x", "y", 1.0)  # floating island
        with pytest.raises(SingularCircuitError):
            c.solve()
