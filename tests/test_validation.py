"""Argument-validation helpers."""

import pytest

from repro.utils.validation import (
    check_fraction,
    check_in_choices,
    check_nonnegative,
    check_positive,
    check_positive_int,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 1.5) == 1.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", 0.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", -1.0)


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative("x", 0.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="x must be >= 0"):
            check_nonnegative("x", -0.1)


class TestCheckFraction:
    def test_accepts_bounds(self):
        assert check_fraction("f", 0.0) == 0.0
        assert check_fraction("f", 1.0) == 1.0

    def test_rejects_above_one(self):
        with pytest.raises(ValueError, match="within"):
            check_fraction("f", 1.01)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_fraction("f", -0.01)


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int("n", 3) == 3

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int("n", 0)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int("n", True)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int("n", 3.0)


class TestCheckInChoices:
    def test_accepts_member(self):
        assert check_in_choices("mode", "a", ("a", "b")) == "a"

    def test_rejects_non_member(self):
        with pytest.raises(ValueError, match="one of"):
            check_in_choices("mode", "c", ("a", "b"))
