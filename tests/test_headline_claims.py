"""Integration: the paper's headline claims at reduced resolution.

These run the full pipeline (power model -> PDN solves -> EM statistics
-> workload sampling) on a small grid; bounds are looser than the
benchmark-grade runs in EXPERIMENTS.md but the qualitative claims must
all hold.
"""

import pytest

from repro.core.experiments import compute_fig5a, compute_fig5b, compute_fig6, compute_fig7, run_headline

GRID = 8


@pytest.fixture(scope="module")
def report():
    fig5a = compute_fig5a(layers=(2, 4, 8), grid_nodes=GRID)
    fig5b = compute_fig5b(layers=(2, 4, 8), grid_nodes=GRID)
    fig6 = compute_fig6(
        n_layers=8,
        imbalances=(0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
        converters_per_core=(8,),
        grid_nodes=GRID,
    )
    fig7 = compute_fig7(rng=20150607)
    return run_headline(grid_nodes=GRID, fig5a=fig5a, fig5b=fig5b, fig6=fig6, fig7=fig7)


class TestHeadlineClaims:
    def test_c4_lifetime_gain(self, report):
        """Abstract: EM lifetime of the C4 array improves up to ~5x."""
        assert report.c4_improvement_8l > 4.0

    def test_tsv_lifetime_gain(self, report):
        """Sec. 5.1: more than 3x for many-layer stacks."""
        assert report.tsv_improvement_8l > 3.0

    def test_regular_tsv_degradation(self, report):
        """Sec. 5.1: regular PDN loses up to ~84% lifetime by 8 layers."""
        assert 0.7 < report.regular_tsv_degradation < 0.95

    def test_vs_tsv_nearly_flat(self, report):
        assert report.vs_tsv_degradation < 0.35

    def test_average_imbalance_is_65(self, report):
        assert report.average_imbalance == pytest.approx(0.65, abs=0.05)

    def test_vs_noise_penalty_small_at_average(self, report):
        """Abstract: only ~0.75% Vdd extra IR drop at the average
        workload imbalance (equal-area comparison)."""
        assert report.vs_extra_ir_drop_at_average < 0.02

    def test_report_renders(self, report):
        text = report.format()
        assert "C4 EM lifetime" in text
        assert "x" in text
