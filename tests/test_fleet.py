"""Distributed fleet: protocol, chaos plans, degradation, satellites.

End-to-end tests run the coordinator inside the supervisor (as
``--fleet`` does) and real :func:`repro.runtime.fleet.run_worker` loops
in background threads (or, for death tests, subprocesses), always
asserting fleet results stay identical to a serial run.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import (
    FleetTransportError,
    ReproError,
    ResumeMismatchError,
    TraceDataError,
)
from repro.runtime import (
    ChaosMonkey,
    ChaosPlan,
    PDNSpec,
    RunJournal,
    RunSupervisor,
    SupervisorConfig,
    SweepPoint,
)
from repro.runtime.chaos import CHAOS_ENV
from repro.runtime.fleet import FLEET_FILE, parse_address, run_worker
from repro.runtime.journal import atomic_write_text, clean_stale_tmp

from tests.conftest import TEST_GRID

REL_TOL = 1e-12
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _points(n_groups: int = 2, per_group: int = 2):
    points = []
    for n_layers in range(2, 2 + n_groups):
        spec = PDNSpec.regular(n_layers, grid_nodes=TEST_GRID)
        for i in range(per_group):
            activities = tuple([1.0 - 0.1 * i] + [1.0] * (n_layers - 1))
            points.append(SweepPoint(spec=spec, layer_activities=activities))
    return points


# Module-level so it pickles by reference into fleet workers (threads
# here, subprocesses in the death tests — both resolve tests.test_fleet).
def _fleet_extract(outcome):
    return outcome.unwrap().max_ir_drop()


def _start_worker_thread(run_dir: pathlib.Path, worker_id: str, results: list):
    """A worker thread that discovers the coordinator via fleet.json."""

    def target():
        fleet_file = run_dir / FLEET_FILE
        deadline = time.monotonic() + 15
        while not fleet_file.exists() and time.monotonic() < deadline:
            time.sleep(0.02)
        address = json.loads(fleet_file.read_text())["address"]
        try:
            results.append(run_worker(address, worker_id=worker_id,
                                      patience_s=5.0))
        except FleetTransportError:
            results.append(None)

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread


def _fleet_config(run_dir: pathlib.Path, **overrides) -> SupervisorConfig:
    config = SupervisorConfig(
        run_dir=str(run_dir), fleet="127.0.0.1:0", fleet_wait_s=10.0
    )
    for name, value in overrides.items():
        setattr(config, name, value)
    return config


class TestParseAddress:
    def test_host_port_forms(self):
        assert parse_address("10.0.0.2:7341") == ("10.0.0.2", 7341)
        assert parse_address(":7341") == ("127.0.0.1", 7341)
        assert parse_address("7341") == ("127.0.0.1", 7341)

    def test_rejects_garbage_and_bad_ports(self):
        with pytest.raises(FleetTransportError):
            parse_address("localhost:notaport")
        with pytest.raises(FleetTransportError):
            parse_address("host:70000")
        with pytest.raises(FleetTransportError):
            parse_address("")


class TestChaosPlan:
    def test_env_round_trip(self, monkeypatch):
        plan = ChaosPlan(
            kill_on_task=2, freeze_on_task=1, freeze_s=4.5,
            drop={"result": [0]}, dup={"heartbeat": [3]}, seed=9,
        )
        monkeypatch.setenv(CHAOS_ENV, plan.to_env())
        loaded = ChaosPlan.from_env()
        assert loaded == plan

    def test_missing_and_malformed_env(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        assert ChaosPlan.from_env() is None
        monkeypatch.setenv(CHAOS_ENV, "{not json")
        assert ChaosPlan.from_env() is None

    def test_seeded_is_deterministic_and_in_range(self):
        a = ChaosPlan.seeded(7, 4, kill=True, freeze=True, drop_result=True)
        b = ChaosPlan.seeded(7, 4, kill=True, freeze=True, drop_result=True)
        assert a == b
        assert 0 <= a.kill_on_task < 4
        assert 0 <= a.freeze_on_task < 4
        assert a.freeze_on_task != a.kill_on_task
        assert ChaosPlan.seeded(8, 4, kill=True) != ChaosPlan.seeded(7, 4, kill=True)

    def test_monkey_drop_dup_and_exemptions(self):
        plan = ChaosPlan(drop={"result": [1]}, dup={"result": [0]},
                         # request is not droppable: must be ignored.
                         )
        plan.drop["request"] = [0]
        monkey = ChaosMonkey(plan)
        assert monkey.copies("request") == 1  # exempt kind
        assert monkey.copies("result") == 2   # dup index 0
        assert monkey.copies("result") == 0   # drop index 1
        assert monkey.copies("result") == 1   # untouched afterwards

    def test_monkey_none_plan_is_noop(self):
        monkey = ChaosMonkey(None)
        monkey.on_task_executed()
        assert monkey.copies("result") == 1


class TestFleetEndToEnd:
    def test_matches_serial_and_accounts_workers(self, tmp_path):
        points = _points(n_groups=3)
        run_dir = tmp_path / "run"
        results: list = []
        thread = _start_worker_thread(run_dir, "t-w1", results)
        supervisor = RunSupervisor(config=_fleet_config(run_dir))
        fleet = supervisor.run(points, extract=_fleet_extract)
        thread.join(timeout=15)

        serial = RunSupervisor().run(points, extract=_fleet_extract)
        assert fleet.values == serial.values
        assert fleet.metrics.mode == "fleet"
        report = fleet.report
        assert len(report.completed) == len(report.tasks) == 3
        assert report.worker_deaths == 0
        workers = {w["id"]: w for w in report.workers}
        assert workers["t-w1"]["tasks_done"] == 3
        assert workers["t-w1"]["shutdown"] == "clean"
        assert results and results[0]["tasks_done"] == 3

    def test_two_workers_share_the_run(self, tmp_path):
        points = _points(n_groups=4)
        run_dir = tmp_path / "run"
        results: list = []
        threads = [
            _start_worker_thread(run_dir, f"t-w{i}", results)
            for i in range(2)
        ]
        supervisor = RunSupervisor(config=_fleet_config(run_dir))
        fleet = supervisor.run(points, extract=_fleet_extract)
        for thread in threads:
            thread.join(timeout=15)
        serial = RunSupervisor().run(points, extract=_fleet_extract)
        assert fleet.values == serial.values
        done = sum(w["tasks_done"] for w in fleet.report.workers)
        assert done == 4

    def test_report_and_bench_carry_fleet_counters(self, tmp_path, monkeypatch):
        from repro.runtime.metrics import BENCH_SCHEMA
        from repro.runtime.supervisor import REPORT_SCHEMA

        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        points = _points(n_groups=2)
        run_dir = tmp_path / "run"
        results: list = []
        thread = _start_worker_thread(run_dir, "t-w1", results)
        supervisor = RunSupervisor(config=_fleet_config(run_dir))
        fleet = supervisor.run(
            points, extract=_fleet_extract, bench_name="fleet_unit"
        )
        thread.join(timeout=15)

        bench = json.loads((tmp_path / "BENCH_fleet_unit.json").read_text())
        assert bench["schema"] == BENCH_SCHEMA
        assert bench["mode"] == "fleet"
        for counter in ("leases_expired", "worker_deaths", "reassignments"):
            assert counter in bench["totals"]

        report_path, = run_dir.glob("report-*.json")
        payload = json.loads(report_path.read_text())
        assert payload["schema"] == REPORT_SCHEMA
        assert payload["fleet"]["worker_deaths"] == 0
        assert payload["fleet"]["workers"][0]["id"] == "t-w1"
        assert fleet.metrics.to_json()["totals"]["leases_expired"] == 0

    def test_frozen_worker_expires_lease_but_results_match(
        self, tmp_path, monkeypatch
    ):
        # The single worker freezes past the lease deadline on its first
        # task; its late result commits (at-least-once), counters record
        # the expiry, and values still match a serial run.
        monkeypatch.setenv(
            CHAOS_ENV, ChaosPlan(freeze_on_task=0, freeze_s=1.2).to_env()
        )
        points = _points(n_groups=2)
        run_dir = tmp_path / "run"
        results: list = []
        thread = _start_worker_thread(run_dir, "t-frozen", results)
        supervisor = RunSupervisor(
            config=_fleet_config(run_dir, lease_timeout_s=0.4)
        )
        fleet = supervisor.run(points, extract=_fleet_extract)
        thread.join(timeout=20)
        monkeypatch.delenv(CHAOS_ENV)

        serial = RunSupervisor().run(points, extract=_fleet_extract)
        assert fleet.values == serial.values
        assert fleet.metrics.leases_expired >= 1
        assert not fleet.report.quarantined

    def test_dropped_result_reassigns_lease(self, tmp_path, monkeypatch):
        # The worker solves its first task but the result message is
        # dropped: the lease expires, the task is re-leased to the same
        # worker, and the second delivery lands.
        monkeypatch.setenv(
            CHAOS_ENV, ChaosPlan(drop={"result": [0]}).to_env()
        )
        points = _points(n_groups=2)
        run_dir = tmp_path / "run"
        results: list = []
        thread = _start_worker_thread(run_dir, "t-lossy", results)
        supervisor = RunSupervisor(
            config=_fleet_config(run_dir, lease_timeout_s=0.4)
        )
        fleet = supervisor.run(points, extract=_fleet_extract)
        thread.join(timeout=20)
        monkeypatch.delenv(CHAOS_ENV)

        serial = RunSupervisor().run(points, extract=_fleet_extract)
        assert fleet.values == serial.values
        assert fleet.metrics.leases_expired >= 1
        assert fleet.metrics.reassignments >= 1

    def test_duplicated_result_commits_once(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            CHAOS_ENV, ChaosPlan(dup={"result": [0]}).to_env()
        )
        points = _points(n_groups=2)
        run_dir = tmp_path / "run"
        results: list = []
        thread = _start_worker_thread(run_dir, "t-dup", results)
        supervisor = RunSupervisor(config=_fleet_config(run_dir))
        fleet = supervisor.run(points, extract=_fleet_extract)
        thread.join(timeout=15)
        monkeypatch.delenv(CHAOS_ENV)

        serial = RunSupervisor().run(points, extract=_fleet_extract)
        assert fleet.values == serial.values
        # A double commit would append the group twice.
        assert len(fleet.metrics.groups) == 2


class TestFleetDegradation:
    def test_no_workers_falls_back_in_process(self, tmp_path):
        points = _points(n_groups=2)
        supervisor = RunSupervisor(
            config=_fleet_config(tmp_path / "run", fleet_wait_s=0.3)
        )
        fleet = supervisor.run(points, extract=_fleet_extract)
        serial = RunSupervisor().run(points, extract=_fleet_extract)
        assert fleet.values == serial.values
        assert fleet.metrics.mode == "serial"
        assert fleet.report.worker_deaths == 0
        assert len(fleet.report.completed) == 2

    def test_unbindable_address_falls_back(self, tmp_path):
        supervisor = RunSupervisor(
            config=SupervisorConfig(
                run_dir=str(tmp_path / "run"),
                # 203.0.113.1 is TEST-NET: never a local interface.
                fleet="203.0.113.1:1",
                fleet_wait_s=0.3,
            )
        )
        points = _points(n_groups=2)
        result = supervisor.run(points, extract=_fleet_extract)
        assert all(v is not None for v in result.values)
        assert len(result.report.completed) == 2

    def test_raw_outcome_sweeps_stay_in_process(self, tmp_path):
        supervisor = RunSupervisor(
            config=_fleet_config(tmp_path / "run", fleet_wait_s=0.3)
        )
        result = supervisor.run(_points(n_groups=2), extract=None)
        assert all(o.error is None for o in result.values)
        assert result.metrics.mode == "serial"

    def test_worker_death_degrades_and_completes(self, tmp_path):
        # A real subprocess worker SIGKILLs itself mid-task; with no
        # replacement the coordinator waits out fleet_wait_s and the
        # supervisor finishes the sweep in-process.  The wait must cover
        # the worker interpreter's startup, or the run degrades before
        # the worker ever registers.
        points = _points(n_groups=2)
        run_dir = tmp_path / "run"
        supervisor = RunSupervisor(
            config=_fleet_config(run_dir, fleet_wait_s=8.0)
        )
        holder: dict = {}

        def spawn():
            fleet_file = run_dir / FLEET_FILE
            deadline = time.monotonic() + 15
            while not fleet_file.exists() and time.monotonic() < deadline:
                time.sleep(0.02)
            address = json.loads(fleet_file.read_text())["address"]
            env = dict(os.environ)
            env["PYTHONPATH"] = (
                str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
            )
            env[CHAOS_ENV] = ChaosPlan(kill_on_task=0).to_env()
            holder["proc"] = subprocess.Popen(
                [sys.executable, "-m", "repro.cli", "worker", address,
                 "--worker-id", "t-doomed", "--patience", "5"],
                cwd=str(REPO_ROOT), env=env,
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            )

        thread = threading.Thread(target=spawn, daemon=True)
        thread.start()
        fleet = supervisor.run(points, extract=_fleet_extract)
        thread.join(timeout=20)
        proc = holder.get("proc")
        assert proc is not None
        proc.wait(timeout=30)

        serial = RunSupervisor().run(points, extract=_fleet_extract)
        assert fleet.values == serial.values
        assert fleet.report.worker_deaths == 1
        workers = {w["id"]: w for w in fleet.report.workers}
        assert workers["t-doomed"]["shutdown"] == "died"
        assert not fleet.report.quarantined


class TestJournalSalvage:
    def _run_and_tear(self, run_dir: pathlib.Path, points):
        supervisor = RunSupervisor(
            config=SupervisorConfig(run_dir=str(run_dir))
        )
        first = supervisor.run(points, extract=_fleet_extract)
        journal, = run_dir.glob("journal-*.jsonl")
        lines = journal.read_text().splitlines()
        lines[-1] = lines[-1][: len(lines[-1]) // 2]
        journal.write_text("\n".join(lines) + "\n")
        return first, journal, len(lines) - 2  # intact task records

    def test_strict_resume_refuses_torn_journal(self, tmp_path):
        points = _points(n_groups=3)
        self._run_and_tear(tmp_path, points)
        supervisor = RunSupervisor(
            config=SupervisorConfig(run_dir=str(tmp_path), resume=True)
        )
        with pytest.raises(ResumeMismatchError):
            supervisor.run(points, extract=_fleet_extract)

    def test_salvage_truncates_restores_and_reruns(self, tmp_path):
        points = _points(n_groups=3)
        first, journal, intact = self._run_and_tear(tmp_path, points)
        supervisor = RunSupervisor(
            config=SupervisorConfig(
                run_dir=str(tmp_path), resume=True, salvage=True
            )
        )
        resumed = supervisor.run(points, extract=_fleet_extract)
        assert resumed.values == first.values
        assert resumed.metrics.resumed == intact
        assert len(resumed.report.completed) == 3
        # The journal was rewritten whole: intact prefix + the re-run.
        lines = journal.read_text().splitlines()
        assert all(json.loads(line) for line in lines)

    def test_salvage_never_rescues_a_torn_header(self, tmp_path):
        points = _points(n_groups=2)
        RunSupervisor(
            config=SupervisorConfig(run_dir=str(tmp_path))
        ).run(points, extract=_fleet_extract)
        journal, = tmp_path.glob("journal-*.jsonl")
        lines = journal.read_text().splitlines()
        lines[0] = lines[0][: len(lines[0]) // 2]
        journal.write_text("\n".join(lines) + "\n")
        with pytest.raises(ResumeMismatchError):
            RunJournal.open_existing(journal, salvage=True)

    def test_salvage_flag_off_by_default(self):
        assert SupervisorConfig().salvage is False


class TestStaleTmpCleanup:
    def test_clean_stale_tmp_removes_and_reports(self, tmp_path):
        keep = tmp_path / "journal-abc.jsonl"
        keep.write_text("{}\n")
        stale = tmp_path / "journal-abc.jsonl.tmp"
        stale.write_text('{"kind": "task", "trunc')
        other = tmp_path / "trace-abc.jsonl.tmp"
        other.write_text("partial")
        removed = clean_stale_tmp(tmp_path)
        assert sorted(p.name for p in removed) == [
            "journal-abc.jsonl.tmp", "trace-abc.jsonl.tmp",
        ]
        assert keep.exists() and not stale.exists() and not other.exists()

    def test_clean_stale_tmp_missing_dir_is_noop(self, tmp_path):
        assert clean_stale_tmp(tmp_path / "nope") == []

    @pytest.mark.parametrize("durable", [True, False])
    def test_atomic_write_leaves_no_tmp_on_success(self, tmp_path, durable):
        path = tmp_path / "artifact.json"
        atomic_write_text(path, "{}\n", durable=durable)
        assert path.read_text() == "{}\n"
        assert list(tmp_path.glob("*.tmp")) == []

    @pytest.mark.parametrize("durable", [True, False])
    def test_resume_ignores_crash_stranded_tmp(self, tmp_path, durable):
        # Simulate a crash between the tmp write and the rename of
        # atomic_write_text (both durability flavours strand the same
        # "<name>.tmp"): resume must clean it up and restore normally.
        points = _points(n_groups=2)
        first = RunSupervisor(
            config=SupervisorConfig(run_dir=str(tmp_path))
        ).run(points, extract=_fleet_extract)
        journal, = tmp_path.glob("journal-*.jsonl")
        stranded = journal.with_name(journal.name + ".tmp")
        stranded.write_text(journal.read_text()[:-20])  # torn payload
        trace_tmp = tmp_path / "trace-deadbeef.jsonl.tmp"
        trace_tmp.write_text('{"kind": "span", "trunc')

        resumed = RunSupervisor(
            config=SupervisorConfig(run_dir=str(tmp_path), resume=True)
        ).run(points, extract=_fleet_extract)
        assert resumed.values == first.values
        assert resumed.metrics.resumed == 2
        assert not stranded.exists()
        assert not trace_tmp.exists()


class TestDeterministicBackoff:
    def test_jitter_is_a_pure_function_of_task_and_attempt(self):
        sup_a = RunSupervisor(config=SupervisorConfig())
        sup_b = RunSupervisor(config=SupervisorConfig())
        for attempts in (1, 2, 5):
            assert sup_a._backoff_delay(attempts, "fp-1") == (
                sup_b._backoff_delay(attempts, "fp-1")
            )
        # Distinct tasks still spread out.
        assert sup_a._backoff_delay(1, "fp-1") != sup_a._backoff_delay(1, "fp-2")
        # And the jittered delay stays inside the documented envelope.
        config = sup_a.config
        for attempts in (1, 2, 3):
            base = min(
                config.backoff_cap_s,
                config.backoff_base_s * 2 ** (attempts - 1),
            )
            delay = sup_a._backoff_delay(attempts, "fp-x")
            assert base <= delay <= base * (1.0 + config.backoff_jitter)

    def test_independent_of_global_rng_state(self):
        import random

        sup = RunSupervisor(config=SupervisorConfig())
        random.seed(1)
        first = sup._backoff_delay(2, "fp-1")
        random.seed(99)
        random.random()
        assert sup._backoff_delay(2, "fp-1") == first


class TestTraceDataErrors:
    def _trace_cli(self, path):
        from repro.cli import main

        return main(["trace", str(path)])

    def test_missing_trace_is_a_one_line_exit(self, tmp_path, capsys):
        assert self._trace_cli(tmp_path) == 2
        err = capsys.readouterr().err
        assert "TraceDataError" in err
        assert "no trace-*.jsonl" in err

    def test_empty_trace_file_raises_typed_error(self, tmp_path):
        from repro.core.experiments.traceview import TraceExperiment
        from repro.core.experiments.base import ExperimentConfig

        trace = tmp_path / "trace-feedc0de.jsonl"
        trace.write_text("")
        config = ExperimentConfig(options={"path": str(tmp_path)})
        with pytest.raises(TraceDataError):
            TraceExperiment().run(config)

    def test_header_only_trace_raises_typed_error(self, tmp_path):
        trace = tmp_path / "trace-feedc0de.jsonl"
        trace.write_text(
            '{"kind": "header", "schema": 1, "run_fingerprint": "x"}\n'
        )
        assert self._trace_cli(tmp_path) == 2

    def test_torn_trace_raises_typed_error_with_line(self, tmp_path):
        from repro.obs.export import load_trace

        trace = tmp_path / "trace-feedc0de.jsonl"
        trace.write_text(
            '{"kind": "header", "schema": 1}\n{"kind": "span", "trunc'
        )
        with pytest.raises(TraceDataError) as excinfo:
            load_trace(trace)
        assert "line 2" in str(excinfo.value)
        assert excinfo.value.path == str(trace)
        assert self._trace_cli(tmp_path) == 2

    def test_trace_errors_are_repro_errors(self):
        assert issubclass(TraceDataError, ReproError)

    def test_flush_tolerates_torn_existing_trace(self, tmp_path):
        from repro.obs.export import flush_spans, load_trace
        from repro.obs.trace import Tracer

        trace = tmp_path / "trace-feedc0de.jsonl"
        trace.write_text('{"kind": "span", "broken')
        tracer = Tracer()
        tracer.enable(trace_id="feedc0de")
        with tracer.span("sweep"):
            pass
        path = flush_spans(tracer.drain(), "feedc0de", trace_dir=tmp_path)
        assert path == trace
        spans = load_trace(trace)
        assert [s.name for s in spans] == ["sweep"]
