"""C4 pad and TSV array construction."""

import pytest

from repro.config.stackups import PadAllocation, StackConfig, TSV_TOPOLOGIES
from repro.pdn.pads import build_pad_array
from repro.pdn.tsv import build_tsv_arrays, tsv_topology_report


class TestPadArray:
    def test_counts_from_fraction(self):
        stack = StackConfig(n_layers=2, grid_nodes=8, pads=PadAllocation(0.25))
        pads = build_pad_array(stack)
        assert pads.total_sites == 33 * 33
        assert pads.n_vdd == pads.n_gnd == 136
        assert sum(pads.vdd_cells.values()) == 136

    def test_override_counts(self):
        stack = StackConfig(
            n_layers=2,
            grid_nodes=8,
            pads=PadAllocation(power_fraction=0.25, vdd_pads_per_core_override=32),
        )
        pads = build_pad_array(stack)
        assert pads.n_vdd == 32 * 16

    def test_io_pads_remainder(self):
        stack = StackConfig(n_layers=2, grid_nodes=8, pads=PadAllocation(0.5))
        pads = build_pad_array(stack)
        assert pads.io_pads == pads.total_sites - pads.n_vdd - pads.n_gnd

    def test_power_fraction_roundtrip(self):
        stack = StackConfig(n_layers=2, grid_nodes=8, pads=PadAllocation(0.5))
        pads = build_pad_array(stack)
        assert pads.power_sites_fraction == pytest.approx(0.5, abs=0.01)

    def test_overallocation_rejected(self):
        stack = StackConfig(
            n_layers=2,
            grid_nodes=8,
            pads=PadAllocation(power_fraction=0.25, vdd_pads_per_core_override=60),
        )
        with pytest.raises(ValueError, match="power sites"):
            build_pad_array(stack)

    def test_pad_resistance_from_technology(self):
        stack = StackConfig(n_layers=2, grid_nodes=8)
        assert build_pad_array(stack).pad_resistance == pytest.approx(10e-3)


class TestTSVArrays:
    def test_counts_per_core(self):
        stack = StackConfig(n_layers=2, grid_nodes=8)
        arrays = build_tsv_arrays(stack)
        topo = stack.tsv_topology
        assert sum(arrays.vdd_cells.values()) == topo.vdd_tsvs_per_core * 16
        assert sum(arrays.gnd_cells.values()) == topo.gnd_tsvs_per_core * 16
        assert sum(arrays.rail_cells.values()) == topo.tsvs_per_core * 16

    def test_resistance_from_technology(self):
        stack = StackConfig(n_layers=2, grid_nodes=8)
        assert build_tsv_arrays(stack).tsv_resistance == pytest.approx(44.539e-3)

    def test_dense_covers_more_cells(self):
        dense = StackConfig(n_layers=2, grid_nodes=8, tsv_topology=TSV_TOPOLOGIES["Dense"])
        few = StackConfig(n_layers=2, grid_nodes=8, tsv_topology=TSV_TOPOLOGIES["Few"])
        assert sum(build_tsv_arrays(dense).rail_cells.values()) > sum(
            build_tsv_arrays(few).rail_cells.values()
        )


class TestTopologyReport:
    def test_table2_row(self):
        from repro.config.stackups import ProcessorSpec

        report = tsv_topology_report(
            TSV_TOPOLOGIES["Dense"], ProcessorSpec().core_area
        )
        assert report["tsvs_per_core"] == 6650
        assert report["area_overhead_percent"] == pytest.approx(24.2, abs=1.0)
