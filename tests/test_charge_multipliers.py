"""Seeman charge-multiplier vectors for SC topology families."""

import pytest

from repro.config.converters import default_sc_spec
from repro.regulator.charge_multipliers import (
    TOPOLOGY_FAMILIES,
    TopologyVectors,
    best_family_for_ratio,
    dickson,
    ladder,
    series_parallel,
    two_to_one_push_pull,
)
from repro.regulator.compact import SCCompactModel


class TestSeriesParallel:
    def test_two_to_one_vectors(self):
        t = series_parallel(2)
        assert t.sum_ac == pytest.approx(0.5)
        assert t.capacitor_count == 1
        assert t.switch_count == 4

    def test_cap_count_scales(self):
        assert series_parallel(4).capacitor_count == 3

    def test_sum_ac_grows_with_ratio(self):
        assert series_parallel(4).sum_ac > series_parallel(2).sum_ac

    def test_rejects_ratio_one(self):
        with pytest.raises(ValueError):
            series_parallel(1)


class TestLadder:
    def test_two_to_one_matches_series_parallel_ssl(self):
        """At 2:1 all families degenerate to the same cap multiplier."""
        assert ladder(2).sum_ac == pytest.approx(series_parallel(2).sum_ac)

    def test_ladder_ssl_worse_at_high_ratio(self):
        """Seeman: the ladder's near-input rungs shuttle more charge, so
        its SSL bound is worse than series-parallel for large N."""
        assert ladder(5).sum_ac > series_parallel(5).sum_ac


class TestDickson:
    def test_cap_multipliers_match_series_parallel(self):
        assert dickson(3).sum_ac == pytest.approx(series_parallel(3).sum_ac)

    def test_switch_count(self):
        assert dickson(3).switch_count == 4 + 3


class TestImpedanceFormulas:
    def test_rssl_formula(self):
        t = series_parallel(2)
        assert t.r_ssl(8e-9, 100e6) == pytest.approx(0.25 / (8e-9 * 100e6))

    def test_rfsl_formula(self):
        t = series_parallel(2)
        # sum_ar = 4 * 0.5 = 2 -> RFSL = 4 / (G * D)
        assert t.r_fsl(4.0, 0.5) == pytest.approx(2.0)

    def test_rseries_quadrature(self):
        import math

        t = series_parallel(2)
        ssl = t.r_ssl(8e-9, 100e6)
        fsl = t.r_fsl(4.0)
        assert t.r_series(8e-9, 100e6, 4.0) == pytest.approx(math.hypot(ssl, fsl))

    def test_push_pull_reproduces_compact_model(self):
        """The hard-coded compact model and the generic framework agree
        on the paper's 0.6-ohm design point."""
        spec = default_sc_spec()
        t = two_to_one_push_pull()
        # The push-pull cell transfers on both phases: effective fsw x2.
        r = t.r_series(
            spec.fly_capacitance,
            2 * spec.switching_frequency,
            spec.switch_conductance * 0.25,  # per-slot conductance scaling
            spec.duty_cycle,
        )
        model = SCCompactModel(spec)
        assert t.r_ssl(spec.fly_capacitance, 2 * spec.switching_frequency) == (
            pytest.approx(model.r_ssl())
        )


class TestFamilySelection:
    def test_registry(self):
        assert set(TOPOLOGY_FAMILIES) == {"series-parallel", "ladder", "dickson"}

    def test_best_family_returns_lowest_rseries(self):
        best = best_family_for_ratio(4, 8e-9, 50e6, 4.0)
        candidates = [f(4) for f in TOPOLOGY_FAMILIES.values()]
        values = [t.r_series(8e-9, 50e6, 4.0) for t in candidates]
        assert best.r_series(8e-9, 50e6, 4.0) == pytest.approx(min(values))

    def test_vectors_immutable(self):
        t = series_parallel(3)
        assert isinstance(t, TopologyVectors)
        with pytest.raises(AttributeError):
            t.ratio = 5
