"""Closed-loop system-level converter control (extension)."""

import numpy as np
import pytest

from repro.core.scenarios import stacked_stack
from repro.pdn.closedloop import (
    ClosedLoopSystemSolver,
    closed_loop_efficiency_gain,
)
from repro.pdn.stacked3d import StackedPDN3D
from repro.workload.imbalance import interleaved_layer_activities

GRID = 8


@pytest.fixture(scope="module")
def stack():
    return stacked_stack(4, grid_nodes=GRID)


@pytest.fixture(scope="module")
def solved(stack):
    solver = ClosedLoopSystemSolver(stack, converters_per_core=8)
    return solver.solve(
        layer_activities=interleaved_layer_activities(4, 0.3)
    )


class TestClosedLoopSolver:
    def test_converges(self, solved):
        assert solved.converged

    def test_frequencies_below_nominal_at_light_load(self, stack, solved):
        from repro.config.converters import default_sc_spec

        nominal = default_sc_spec().switching_frequency
        assert all(f < nominal for f in solved.rail_frequencies)

    def test_per_rail_frequencies(self, stack, solved):
        assert len(solved.rail_frequencies) == stack.n_layers - 1

    def test_history_recorded(self, solved):
        assert solved.iterations >= 2
        assert len(solved.history[0]) == len(solved.rail_frequencies)

    def test_result_is_valid_operating_point(self, solved):
        assert 0.0 < solved.result.efficiency() < 1.0
        assert solved.result.max_ir_drop_fraction() < 0.2


class TestEfficiencyGain:
    def test_closed_loop_improves_efficiency(self, stack):
        """The point of closed-loop control: lightly-loaded converters
        slow down and stop burning parasitic power (paper Sec. 5.3)."""
        gains = closed_loop_efficiency_gain(
            stack, 8, interleaved_layer_activities(4, 0.2)
        )
        assert gains["closed_loop"] > gains["open_loop"]
        assert gains["gain"] > 0.02

    def test_gain_shrinks_at_heavy_converter_load(self, stack):
        light = closed_loop_efficiency_gain(
            stack, 8, interleaved_layer_activities(4, 0.1)
        )
        heavy = closed_loop_efficiency_gain(
            stack, 8, interleaved_layer_activities(4, 0.9)
        )
        assert heavy["gain"] < light["gain"]


class TestPerRailFrequencyStamping:
    def test_scalar_and_none_paths(self, stack):
        nominal = StackedPDN3D(stack, converters_per_core=4)
        slowed = StackedPDN3D(stack, converters_per_core=4, converter_fsw=25e6)
        # Halving fsw doubles RSSL; series resistance must grow.
        r_nom = nominal.compact_model.r_series(nominal.rail_fsw[0])
        r_slow = slowed.compact_model.r_series(slowed.rail_fsw[0])
        assert r_slow > r_nom

    def test_per_rail_vector(self, stack):
        freqs = [50e6, 25e6, 10e6]
        pdn = StackedPDN3D(stack, converters_per_core=4, converter_fsw=freqs)
        assert pdn.rail_fsw == freqs

    def test_wrong_vector_length_rejected(self, stack):
        with pytest.raises(ValueError, match="per-rail"):
            StackedPDN3D(stack, converters_per_core=4, converter_fsw=[50e6])

    def test_validation_errors(self, stack):
        with pytest.raises(ValueError):
            ClosedLoopSystemSolver(stack, tolerance=0.0)
        with pytest.raises(ValueError):
            ClosedLoopSystemSolver(stack, max_iterations=0)
