"""HA tier e2e: shared-cache replicas, epoch coherence, failover, fleet.

The chaos-shaped proofs the HA design rests on live here:

* a SIGKILLed replica loses no queries (clients fail over mid-burst and
  the shared cache shows zero torn entries afterwards),
* bumping the code epoch forces a re-solve while the old entry stays
  reachable only through the degraded stale path, and
* an injected truncated cache entry is evicted and counted, never
  served.

Replicas here are real :class:`~repro.service.ExplorationService`
instances — in-process on background threads for speed, plus one real
``repro serve`` *subprocess* for the SIGKILL test (a thread cannot be
killed; crash-safety of the flock flight claims needs a real process
death).
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import FleetTransportError, ServiceUnavailableError
from repro.runtime import PDNSpec, SweepEngine, SweepPoint
from repro.runtime.fleet import ServiceFleet, run_worker
from repro.service import (
    ResultCache,
    ServiceClient,
    ServiceConfig,
    extract_summary,
    query_fingerprint,
    robust_query,
    serve_in_background,
)
from repro.service.replica import (
    ReplicaFlights,
    deregister_replica,
    live_replicas,
    register_replica,
)

from tests.conftest import TEST_GRID

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def _spec(n_layers: int = 2, grid: int = TEST_GRID) -> PDNSpec:
    return PDNSpec.regular(n_layers, grid_nodes=grid)


class _CountingSolver:
    """Stub backend shared by several replicas: counts calls, can stall."""

    def __init__(self, delay_s: float = 0.0):
        self.delay_s = delay_s
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, spec, activities, deadline):
        with self._lock:
            self.calls += 1
        if self.delay_s:
            time.sleep(self.delay_s)
        return {"efficiency": 0.9, "grid": spec.grid_nodes}


@pytest.fixture
def serve(tmp_path):
    """Factory: boot replicas onto ONE shared cache dir; teardown all."""
    handles = []
    cache_dir = tmp_path / "shared-cache"

    def _serve(solve_fn=None, **overrides):
        settings = dict(
            bind="127.0.0.1:0", cache_dir=str(cache_dir), bench_name=None
        )
        settings.update(overrides)
        handle = serve_in_background(
            config=ServiceConfig(**settings), solve_fn=solve_fn
        )
        handles.append(handle)
        return handle

    _serve.cache_dir = cache_dir
    yield _serve
    for handle in handles:
        handle.stop(drain=False)


# ----------------------------------------------------------------------
# replicas sharing one cache directory
# ----------------------------------------------------------------------

class TestReplicaCacheSharing:
    def test_peer_write_is_visible_across_replicas(self, serve):
        """Replica B serves replica A's answer from the shared cache."""
        solver_a, solver_b = _CountingSolver(), _CountingSolver()
        a = serve(solve_fn=solver_a, replica_id="replica-a")
        b = serve(solve_fn=solver_b, replica_id="replica-b")
        with ServiceClient(a.address) as client:
            first = client.query(_spec())
        with ServiceClient(b.address) as client:
            second = client.query(_spec())
        assert first["status"] == "ok" and not first["cached"]
        assert second["status"] == "ok" and second["cached"]
        assert second["result"] == first["result"]
        assert solver_a.calls == 1 and solver_b.calls == 0

    def test_cross_replica_single_flight(self, serve):
        """The same miss on two replicas at once -> exactly one solve."""
        solver = _CountingSolver(delay_s=0.5)
        a = serve(solve_fn=solver, replica_id="replica-a")
        b = serve(solve_fn=solver, replica_id="replica-b")
        spec, results = _spec(), []
        lock = threading.Lock()

        def query(address):
            with ServiceClient(address, timeout_s=30.0) as client:
                response = client.query(spec, deadline_s=30.0)
            with lock:
                results.append(response)

        threads = [
            threading.Thread(target=query, args=(h.address,)) for h in (a, b)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert len(results) == 2
        assert all(r["status"] == "ok" for r in results)
        assert results[0]["result"] == results[1]["result"]
        assert solver.calls == 1
        waits = (
            a.service.replica_waits + b.service.replica_waits
        )
        hits = a.service.replica_hits + b.service.replica_hits
        # The follower either waited out the peer's flight or arrived
        # after the cache write (plain cached hit) — both are one solve.
        assert waits == hits

    def test_flight_claims_are_exclusive_and_crash_swept(self, tmp_path):
        flights_a = ReplicaFlights(tmp_path).open()
        flights_b = ReplicaFlights(tmp_path).open()
        claim = flights_a.try_claim("fp1")
        assert claim is not None
        # Held by A: B is refused (advisory flock across open fds).
        assert flights_b.try_claim("fp1") is None
        assert flights_b.busy == 1
        claim.release()
        assert not claim.path.exists()
        follow_up = flights_b.try_claim("fp1")
        assert follow_up is not None
        follow_up.release()
        # A leftover lock file with no live holder is swept on open.
        litter = tmp_path / "flights" / "flight-dead.lock"
        litter.write_text("{}")
        ReplicaFlights(tmp_path).open()
        assert not litter.exists()


# ----------------------------------------------------------------------
# version-aware cache coherence
# ----------------------------------------------------------------------

class TestEpochCoherence:
    def test_epoch_bump_forces_resolve_and_keeps_stale_path(self, serve):
        solver = _CountingSolver()
        first = serve(solve_fn=solver, epoch="epoch-aaa")
        with ServiceClient(first.address) as client:
            assert client.query(_spec())["status"] == "ok"
        assert solver.calls == 1
        first.stop(drain=True)

        # A new-epoch cache sees the old entry ONLY via the stale path.
        cache = ResultCache(serve.cache_dir, epoch="epoch-bbb").open()
        fingerprint = query_fingerprint(_spec())
        assert cache.get(fingerprint) is None
        assert cache.epoch_misses == 1
        stale = cache.get(fingerprint, allow_stale=True)
        assert stale is not None and stale.stale
        assert stale.stale_reason == "epoch"
        assert stale.epoch == "epoch-aaa"

        # A new-epoch replica re-solves and re-stamps the entry.
        second = serve(solve_fn=solver, epoch="epoch-bbb")
        with ServiceClient(second.address) as client:
            bumped = client.query(_spec())
            again = client.query(_spec())
            metrics = client.metrics()
        assert bumped["status"] == "ok" and not bumped["cached"]
        assert again["cached"]
        assert solver.calls == 2
        counters = metrics["counters"]
        assert counters["epoch"] == "epoch-bbb"
        assert counters["cache"]["epoch_misses"] == 1

    def test_invalidate_removes_one_generation(self, tmp_path):
        old = ResultCache(tmp_path / "c", epoch="epoch-old").open()
        old.put("fp-old", {"v": 1})
        new = ResultCache(tmp_path / "c", epoch="epoch-new").open()
        new.put("fp-new", {"v": 2})
        removed = new.invalidate(epoch="epoch-old")
        assert removed == 1
        assert new.get("fp-new") is not None
        assert new.get("fp-old", allow_stale=True) is None

    def test_truncated_entry_is_evicted_and_counted(self, serve):
        """An injected torn entry re-solves; it is never served."""
        solver = _CountingSolver()
        handle = serve(solve_fn=solver)
        with ServiceClient(handle.address) as client:
            client.query(_spec())
        fingerprint = query_fingerprint(_spec())
        path = serve.cache_dir / f"result-{fingerprint}.json"
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with ServiceClient(handle.address) as client:
            response = client.query(_spec())
            metrics = client.metrics()
        assert response["status"] == "ok" and not response["cached"]
        assert solver.calls == 2
        assert metrics["counters"]["cache"]["corrupt"] == 1

    def test_checksum_mismatch_is_corruption(self, tmp_path):
        cache = ResultCache(tmp_path / "c").open()
        cache.put("fp1", {"v": 1})
        path = tmp_path / "c" / "result-fp1.json"
        record = json.loads(path.read_text())
        record["payload"]["v"] = 999  # bit-flip; checksum now wrong
        path.write_text(json.dumps(record))
        assert cache.get("fp1") is None
        assert cache.corrupt == 1
        assert not path.exists()


# ----------------------------------------------------------------------
# replica registry + discovery + failover
# ----------------------------------------------------------------------

def _dead_pid() -> int:
    """The pid of a process that has already exited and been reaped."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


class TestReplicaRegistry:
    def test_register_merge_and_deregister(self, tmp_path):
        register_replica(tmp_path, "r1", "127.0.0.1:1001", epoch="e1")
        replicas = register_replica(tmp_path, "r2", "127.0.0.1:1002")
        assert [r["id"] for r in replicas] == ["r1", "r2"]
        assert [r["id"] for r in live_replicas(tmp_path)] == ["r1", "r2"]
        # Head fields keep the pre-HA single-address layout working.
        record = json.loads((tmp_path / "service.json").read_text())
        assert record["address"] == "127.0.0.1:1001"
        deregister_replica(tmp_path, "r1")
        assert [r["id"] for r in live_replicas(tmp_path)] == ["r2"]
        deregister_replica(tmp_path, "r2")
        # Last replica out removes the file: no stale discovery left.
        assert not (tmp_path / "service.json").exists()

    def test_dead_pid_is_pruned_on_next_register(self, tmp_path):
        (tmp_path / "service.json").write_text(
            json.dumps(
                {
                    "address": "127.0.0.1:1001",
                    "replicas": [
                        {
                            "id": "crashed",
                            "address": "127.0.0.1:1001",
                            "pid": _dead_pid(),
                        }
                    ],
                }
            )
        )
        replicas = register_replica(tmp_path, "live", "127.0.0.1:1002")
        assert [r["id"] for r in replicas] == ["live"]


class TestDiscoveryAndFailover:
    def test_missing_discovery_is_typed(self, tmp_path):
        with pytest.raises(ServiceUnavailableError) as exc_info:
            robust_query(_spec(), cache_dir=tmp_path / "nowhere")
        assert "service.json" in str(exc_info.value)

    def test_stale_discovery_cli_is_one_line_exit_2(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["query", "--cache-dir", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "service.json" in err
        assert "Traceback" not in err

    def test_dead_address_cli_names_the_stale_file(self, tmp_path, capsys):
        from repro.cli import main

        dead = _reserved_dead_address()
        (tmp_path / "service.json").write_text(
            json.dumps({"address": dead, "pid": _dead_pid()})
        )
        code = main(
            ["query", "--cache-dir", str(tmp_path), "--grid", str(TEST_GRID)]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "stale discovery file" in err
        assert "Traceback" not in err

    def test_robust_query_fails_over_a_dead_replica(self, serve):
        solver = _CountingSolver()
        handle = serve(solve_fn=solver)
        response = robust_query(
            _spec(),
            addresses=[_reserved_dead_address(), handle.address],
            deadline_s=30.0,
        )
        assert response["status"] == "ok"
        assert solver.calls == 1


def _reserved_dead_address() -> str:
    """An address that refuses connections (bound, closed, not reused)."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return f"127.0.0.1:{port}"


# ----------------------------------------------------------------------
# shed-aware retries
# ----------------------------------------------------------------------

class _ScriptedReplica:
    """A fake replica answering each query from a canned response list."""

    def __init__(self, responses):
        self.responses = list(responses)
        self.requests = 0
        self._server = socket.socket()
        self._server.bind(("127.0.0.1", 0))
        self._server.listen(8)
        self.address = "127.0.0.1:{}".format(self._server.getsockname()[1])
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self):
        while True:
            try:
                conn, _ = self._server.accept()
            except OSError:
                return
            with conn:
                reader = conn.makefile("r", encoding="utf-8")
                line = reader.readline()
                if not line:
                    continue
                self.requests += 1
                index = min(self.requests - 1, len(self.responses) - 1)
                conn.sendall(
                    (json.dumps(self.responses[index]) + "\n").encode()
                )

    def close(self):
        self._server.close()


def _shed(retry_after_s: float) -> dict:
    return {
        "kind": "error",
        "status": "overloaded",
        "code": 429,
        "error_type": "ServiceOverloadError",
        "error": "scripted shed",
        "retry_after_s": retry_after_s,
    }


_OK = {"kind": "result", "status": "ok", "code": 200, "result": {"v": 1.0}}


class TestRetries:
    def test_retries_honor_the_server_hint(self):
        replica = _ScriptedReplica([_shed(0.3), _OK])
        try:
            t0 = time.monotonic()
            response = robust_query(_spec(), [replica.address], retries=2)
            elapsed = time.monotonic() - t0
        finally:
            replica.close()
        assert response["status"] == "ok"
        assert replica.requests == 2
        assert elapsed >= 0.3  # the hint was honoured, not ignored

    def test_no_retries_returns_the_shed(self):
        replica = _ScriptedReplica([_shed(0.2)])
        try:
            response = robust_query(_spec(), [replica.address], retries=0)
        finally:
            replica.close()
        assert response["code"] == 429
        assert replica.requests == 1

    def test_backoff_never_sleeps_past_the_deadline(self):
        """A 30s hint against a 0.6s deadline: clamped, never overshot."""
        replica = _ScriptedReplica([_shed(30.0)])
        try:
            t0 = time.monotonic()
            response = robust_query(
                _spec(), [replica.address], deadline_s=0.6, retries=5
            )
            elapsed = time.monotonic() - t0
        finally:
            replica.close()
        assert response["code"] == 429  # surfaced, not raised
        assert elapsed < 3.0  # nowhere near the 30s hint


# ----------------------------------------------------------------------
# fleet-backed misses
# ----------------------------------------------------------------------

class TestServiceFleet:
    def test_fleet_answer_is_bit_identical_to_the_engine(self):
        fleet = ServiceFleet(
            "127.0.0.1:0", extract=extract_summary, wait_s=20.0
        )
        address = fleet.start()
        worker = threading.Thread(
            target=run_worker,
            args=(address,),
            kwargs={"worker_id": "w1", "patience_s": 10.0},
            daemon=True,
        )
        worker.start()
        try:
            spec = _spec()
            value = fleet.solve(spec, timeout_s=120.0)
        finally:
            fleet.close()
        worker.join(timeout=10.0)
        assert not worker.is_alive()  # close() released it cleanly
        direct = (
            SweepEngine()
            .run([SweepPoint(spec=spec)], extract=extract_summary)
            .values[0]
        )
        assert set(value) == set(direct)
        for key, expected in direct.items():
            assert value[key] == pytest.approx(expected, abs=1e-12)
        assert fleet.counters()["tasks_done"] == 1

    def test_no_worker_starves_to_transport_error(self):
        fleet = ServiceFleet(
            "127.0.0.1:0", extract=extract_summary, wait_s=0.2
        )
        fleet.start()
        try:
            with pytest.raises(FleetTransportError, match="no fleet worker"):
                fleet.solve(_spec(), timeout_s=30.0)
        finally:
            fleet.close()

    def test_serve_fleet_miss_fans_out_to_a_worker(self, serve):
        handle = serve(fleet="127.0.0.1:0", fleet_wait_s=5.0)
        fleet_address = handle.service.fleet_address
        assert fleet_address is not None
        worker = threading.Thread(
            target=run_worker,
            args=(fleet_address,),
            kwargs={"worker_id": "w1", "patience_s": 10.0},
            daemon=True,
        )
        worker.start()
        deadline = time.monotonic() + 10.0
        while (
            handle.service.fleet.workers_connected() == 0
            and time.monotonic() < deadline
        ):
            time.sleep(0.05)
        assert handle.service.fleet.workers_connected() == 1
        spec = _spec()
        with ServiceClient(handle.address, timeout_s=120.0) as client:
            response = client.query(spec, deadline_s=120.0)
            metrics = client.metrics()
        assert response["status"] == "ok"
        fleet_counters = metrics["counters"]["fleet"]
        assert fleet_counters["tasks_done"] == 1
        assert fleet_counters["fallbacks"] == 0
        direct = (
            SweepEngine()
            .run([SweepPoint(spec=spec)], extract=extract_summary)
            .values[0]
        )
        for key, expected in direct.items():
            assert response["result"][key] == pytest.approx(
                expected, abs=1e-12
            )
        handle.stop(drain=True)
        worker.join(timeout=10.0)
        assert not worker.is_alive()

    def test_serve_fleet_without_workers_degrades_to_local(self, serve):
        solver = _CountingSolver()
        handle = serve(
            solve_fn=solver, fleet="127.0.0.1:0", fleet_wait_s=0.1
        )
        with ServiceClient(handle.address) as client:
            response = client.query(_spec())
            metrics = client.metrics()
        assert response["status"] == "ok"
        assert solver.calls == 1  # answered locally, not hung on the fleet
        assert metrics["counters"]["fleet"]["workers"] == 0


# ----------------------------------------------------------------------
# chaos: SIGKILL a real replica mid-burst
# ----------------------------------------------------------------------

class TestReplicaKillChaos:
    def test_sigkill_mid_burst_loses_no_queries(self, tmp_path):
        """Kill replica A (a real process) mid-burst: every query still
        answered via replica B, and the shared cache has zero torn
        entries afterwards."""
        cache_dir = tmp_path / "shared-cache"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--bind",
                "127.0.0.1:0",
                "--cache-dir",
                str(cache_dir),
            ],
            env=env,
            cwd=str(REPO_ROOT),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        handle = None
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if any(
                    r.get("pid") == proc.pid
                    for r in live_replicas(cache_dir)
                ):
                    break
                assert proc.poll() is None, "replica A died during startup"
                time.sleep(0.1)
            else:
                pytest.fail("replica A never registered")
            handle = serve_in_background(
                config=ServiceConfig(
                    bind="127.0.0.1:0",
                    cache_dir=str(cache_dir),
                    bench_name=None,
                    replica_id="replica-b",
                )
            )
            answered = 0
            for index, layers in enumerate((2, 3, 4, 5)):
                response = robust_query(
                    _spec(layers),
                    cache_dir=cache_dir,
                    deadline_s=120.0,
                    client_timeout_s=60.0,
                )
                assert response["status"] == "ok", response
                answered += 1
                if index == 1:
                    os.kill(proc.pid, signal.SIGKILL)
                    proc.wait(timeout=10.0)
            assert answered == 4
            report = ResultCache(cache_dir).open().verify()
            assert report["evicted"] == 0, "torn cache entries after kill"
            assert report["ok"] == report["checked"] > 0
        finally:
            if handle is not None:
                handle.stop(drain=False)
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10.0)
