"""Property-based tests of the MNA engine (hypothesis).

Invariants exercised on randomly generated connected resistive networks:

* conservation: total source power equals total absorbed power,
* linearity/superposition in the independent sources,
* passivity: resistors never generate power,
* the converter stamp conserves power exactly (ideal transformer).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.netlist import Circuit


@st.composite
def random_networks(draw):
    """A connected random resistive network with sources.

    Nodes 0..n-1; node 0 is ground.  A spanning chain guarantees
    connectivity; extra random edges add meshes.
    """
    n = draw(st.integers(min_value=3, max_value=12))
    resist = st.floats(min_value=0.01, max_value=100.0, allow_nan=False)
    edges = [(i, i + 1, draw(resist)) for i in range(n - 1)]
    extra = draw(st.integers(min_value=0, max_value=10))
    for _ in range(extra):
        a = draw(st.integers(min_value=0, max_value=n - 1))
        b = draw(st.integers(min_value=0, max_value=n - 1))
        if a != b:
            edges.append((a, b, draw(resist)))
    v_value = draw(st.floats(min_value=-10.0, max_value=10.0, allow_nan=False))
    i_node = draw(st.integers(min_value=1, max_value=n - 1))
    i_value = draw(st.floats(min_value=-5.0, max_value=5.0, allow_nan=False))
    return n, edges, v_value, i_node, i_value


def build(n, edges, v_value, i_node, i_value, v_scale=1.0, i_scale=1.0):
    c = Circuit()
    c.set_ground(0)
    for a, b, r in edges:
        c.add_resistor(a, b, r)
    c.add_voltage_source(n - 1, 0, v_value * v_scale, tag="v")
    c.add_current_source(0, i_node, i_value * i_scale, tag="i")
    return c


class TestNetworkInvariants:
    @given(random_networks())
    @settings(max_examples=60, deadline=None)
    def test_power_balance(self, network):
        sol = build(*network).solve()
        scale = max(1.0, abs(sol.vsource_power()))
        assert sol.power_balance_error() / scale < 1e-8

    @given(random_networks())
    @settings(max_examples=60, deadline=None)
    def test_resistors_are_passive(self, network):
        sol = build(*network).solve()
        assert sol.resistor_power() >= -1e-12

    @given(random_networks())
    @settings(max_examples=40, deadline=None)
    def test_superposition(self, network):
        """v(full) == v(V only) + v(I only) for every node."""
        n = network[0]
        full = build(*network).solve()
        only_v = build(*network, i_scale=0.0).solve()
        only_i = build(*network, v_scale=0.0).solve()
        for node in range(n):
            combined = only_v.voltage(node) + only_i.voltage(node)
            assert np.isclose(full.voltage(node), combined, atol=1e-8)

    @given(random_networks(), st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=40, deadline=None)
    def test_source_scaling_is_linear(self, network, alpha):
        """Scaling every source by alpha scales every voltage by alpha."""
        n = network[0]
        base = build(*network).solve()
        scaled = build(*network, v_scale=alpha, i_scale=alpha).solve()
        for node in range(n):
            assert np.isclose(
                scaled.voltage(node), alpha * base.voltage(node),
                rtol=1e-7, atol=1e-7,
            )


class TestConverterInvariants:
    @given(
        st.floats(min_value=0.5, max_value=5.0),
        st.floats(min_value=-0.2, max_value=0.2),
        st.floats(min_value=0.05, max_value=5.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_converter_power_conservation(self, v_in, load, r_series):
        c = Circuit()
        c.set_ground("gnd")
        c.add_voltage_source("top", "gnd", v_in)
        c.add_converter("top", "gnd", "mid", r_series=r_series, tag="sc")
        c.add_current_source("mid", "gnd", load)
        sol = c.solve()
        assert sol.power_balance_error() < 1e-9

    @given(
        st.floats(min_value=0.5, max_value=5.0),
        st.floats(min_value=-0.2, max_value=0.2),
        st.floats(min_value=0.05, max_value=5.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_converter_output_law(self, v_in, load, r_series):
        """v_mid = v_in/2 - j*r_series with j equal to the load."""
        c = Circuit()
        c.set_ground("gnd")
        c.add_voltage_source("top", "gnd", v_in)
        c.add_converter("top", "gnd", "mid", r_series=r_series, tag="sc")
        c.add_current_source("mid", "gnd", load)
        sol = c.solve()
        j = sol.converter_output_currents("sc")[0]
        assert np.isclose(j, load, atol=1e-10)
        assert np.isclose(sol.voltage("mid"), v_in / 2 - load * r_series, atol=1e-9)
