"""HotSpot-lite thermal screening."""

import numpy as np
import pytest

from repro.config.stackups import StackConfig
from repro.thermal import HotSpotLite, ThermalConfig, max_feasible_layers

GRID = 8


def make(n_layers, **cfg):
    stack = StackConfig(n_layers=n_layers, grid_nodes=GRID)
    config = ThermalConfig(**cfg) if cfg else None
    return HotSpotLite(stack, config)


class TestSolver:
    def test_idle_stack_near_ambient(self):
        solver = make(2)
        zero = solver.solve(layer_activities=np.zeros(2))
        # Leakage floor still heats a little, but far below peak.
        peak = solver.solve()
        assert zero.hotspot < peak.hotspot
        assert zero.hotspot < 60.0

    def test_hotspot_grows_with_layers(self):
        assert make(4).solve().hotspot > make(2).solve().hotspot

    def test_bottom_layer_is_hottest(self):
        """Heat exits through the top; the bottom layer runs hottest."""
        result = make(4).solve()
        assert result.hotspot_layer == 0

    def test_temperature_above_ambient(self):
        result = make(2).solve()
        for layer_map in result.layer_temperatures:
            assert np.all(layer_map > result.ambient)

    def test_total_heat_flow_consistent(self):
        """Sink temperature rise ~= total power x sink resistance."""
        solver = make(2)
        result = solver.solve()
        total_power = 2 * solver.stack.processor.peak_power
        sink_rise = total_power * solver.config.sink_resistance
        coolest = min(float(t.min()) for t in result.layer_temperatures)
        assert coolest > result.ambient + sink_rise * 0.8

    def test_activity_shape_checked(self):
        with pytest.raises(ValueError):
            make(2).solve(layer_activities=np.ones(3))

    def test_power_map_count_checked(self):
        from repro.power.powermap import layer_power_map

        solver = make(2)
        with pytest.raises(ValueError):
            solver.solve(power_maps=[layer_power_map(solver.stack)])


class TestFeasibility:
    def test_paper_limit_is_eight_layers(self):
        """Sec. 4.1: up to 8 layers stay below 100 C with air cooling."""
        base = StackConfig(n_layers=1, grid_nodes=GRID)
        assert max_feasible_layers(base, limit_celsius=100.0) == 8

    def test_better_cooling_allows_more_layers(self):
        base = StackConfig(n_layers=1, grid_nodes=GRID)
        liquid = ThermalConfig(sink_resistance=0.05)
        assert max_feasible_layers(base, config=liquid) > 8

    def test_strict_limit_allows_fewer(self):
        base = StackConfig(n_layers=1, grid_nodes=GRID)
        assert max_feasible_layers(base, limit_celsius=70.0) < 8
