"""Cross-feature integration scenarios.

Each test chains several subsystems the way a study would: workload
generation feeding PDN solves feeding EM/thermal/guardband analyses.
"""

import numpy as np
import pytest

from repro.config.stackups import ProcessorSpec, StackConfig

GRID = 8


class TestGem5DrivenNoise:
    def test_emergent_workloads_drive_the_profiler(self):
        """gem5-lite sample sets drop into the noise profiler."""
        from repro.core.noise_profile import NoiseProfiler
        from repro.core.scenarios import build_stacked_pdn
        from repro.workload.gem5_lite import gem5_sample_suite

        pdn = build_stacked_pdn(2, converters_per_core=8, grid_nodes=GRID)
        suite = gem5_sample_suite(ProcessorSpec(), n_windows=200, rng=4)
        profiles = NoiseProfiler(pdn, suite).compare_policies(trials=15, rng=2)
        assert profiles["same-app"].mean <= profiles["mixed"].mean * 1.1
        assert 0 < profiles["mixed"].worst < 0.2


class TestHybridInTheExplorerStyle:
    def test_hybrid_em_vs_noise_tradeoff(self):
        """The multi-story sweep produces the expected Pareto shape:
        EM improves with height while noise is non-monotone."""
        from repro.em import (
            C4_CROSS_SECTION,
            expected_em_lifetime,
            median_lifetimes_from_currents,
        )
        from repro.pdn.hybrid3d import HybridPDN3D
        from repro.workload.imbalance import interleaved_layer_activities

        stack = StackConfig(n_layers=4, grid_nodes=GRID)
        acts = interleaved_layer_activities(4, 0.5)
        lifetimes = {}
        drops = {}
        for h in (1, 2, 4):
            result = HybridPDN3D(stack, story_height=h, converters_per_core=8).solve(
                layer_activities=acts
            )
            drops[h] = result.max_ir_drop_fraction()
            lifetimes[h] = expected_em_lifetime(
                median_lifetimes_from_currents(
                    result.conductor_currents("c4"), C4_CROSS_SECTION
                )
            )
        assert lifetimes[4] > lifetimes[2] > lifetimes[1]
        assert drops[2] <= max(drops[1], drops[4])


class TestThermalAwareEMPipeline:
    def test_full_chain(self):
        """Leakage loop -> PDN solve with coupled maps -> per-tier EM."""
        from repro.core.scenarios import build_regular_pdn
        from repro.em.thermal_coupling import thermally_coupled_lifetime
        from repro.power.thermal_feedback import LeakageThermalLoop

        stack = StackConfig(n_layers=2, grid_nodes=GRID)
        op = LeakageThermalLoop(stack).converge()
        pdn = build_regular_pdn(2, grid_nodes=GRID)
        result = pdn.solve(power_maps=op.power_maps)
        life = thermally_coupled_lifetime(result, op.thermal, "tsv")
        assert life > 0
        # The coupled power maps differ from the nominal by the leakage
        # temperature correction, so the solve consumed them.
        nominal = pdn.solve().load_power()
        assert result.load_power() != pytest.approx(nominal, rel=1e-6)


class TestGuardbandOverNoiseProfile:
    def test_statistical_guardband(self):
        """P95-based guardbanding: combine the noise distribution with
        the alpha-power model (margin to cover 95% of operating points)."""
        from repro.core.guardband import AlphaPowerModel
        from repro.core.noise_profile import NoiseProfiler
        from repro.core.scenarios import build_stacked_pdn
        from repro.workload.sampling import sample_suite

        pdn = build_stacked_pdn(2, converters_per_core=8, grid_nodes=GRID)
        suite = sample_suite(ProcessorSpec(), n_samples=200, rng=6)
        profile = NoiseProfiler(pdn, suite).profile("mixed", trials=20, rng=3)
        model = AlphaPowerModel()
        p95_band = model.guardband_for_droop(profile.percentile(95))
        worst_band = model.guardband_for_droop(profile.worst)
        assert 0 < p95_band <= worst_band < 0.5


class TestClosedLoopOnHybrid:
    def test_placed_pdn_solves_with_custom_frequency(self):
        """Explicit placement composes with per-rail frequency override."""
        from repro.core.placement import PlacedStackedPDN3D
        from repro.pdn.geometry import GridGeometry, distribute_per_core

        stack = StackConfig(n_layers=2, grid_nodes=GRID)
        cells = distribute_per_core(GridGeometry.from_stack(stack), 4)
        pdn = PlacedStackedPDN3D(stack, cells, converter_fsw=[25e6])
        result = pdn.solve()
        assert result.max_ir_drop_fraction() > 0


class TestExportPipeline:
    def test_fig6_csv_roundtrip_matches_result(self, tmp_path):
        import csv

        from repro.analysis.export import fig6_to_csv
        from repro.core.experiments import compute_fig6

        result = compute_fig6(
            n_layers=2, imbalances=(0.0, 1.0), converters_per_core=(8,),
            grid_nodes=GRID,
        )
        path = fig6_to_csv(result, tmp_path / "f6.csv")
        rows = list(csv.reader(path.open()))
        value = float(rows[1][1])
        assert value == pytest.approx(result.vs_at(8, 0.0))
