"""Experiment protocol: registry, CLI generation, run() contract."""

import json

import pytest

from repro.core.experiments import (
    Experiment,
    ExperimentConfig,
    all_experiments,
    get_experiment,
    register,
)
from repro.cli import build_parser

from tests.conftest import TEST_GRID

EXPECTED_ORDER = [
    "table1",
    "table2",
    "fig3",
    "fig5a",
    "fig5b",
    "fig6",
    "fig7",
    "fig8",
    "headline",
    "explore",
    "sensitivity",
    "noise",
    "contingency",
    "report",
    "trace",
    "worker",
    "serve",
    "query",
    "cache",
    "dash",
]


class TestRegistry:
    def test_all_commands_registered_in_cli_order(self):
        assert list(all_experiments()) == EXPECTED_ORDER

    def test_every_experiment_is_described(self):
        for name, cls in all_experiments().items():
            assert issubclass(cls, Experiment)
            assert cls.name == name
            assert cls.description
            assert cls().describe() == cls.description

    def test_get_experiment_unknown_name(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("fig99")

    def test_register_rejects_duplicates_and_non_experiments(self):
        with pytest.raises(TypeError):
            register(dict)

        class Dup(Experiment):
            name = "fig6"
            description = "duplicate"

            def run(self, config):
                raise NotImplementedError

        with pytest.raises(ValueError, match="duplicate"):
            register(Dup)

    def test_cli_parser_generated_from_registry(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions if a.dest == "command"
        )
        assert list(sub.choices) == EXPECTED_ORDER


class TestRunContract:
    def test_fig6_run_result(self):
        cls = get_experiment("fig6")
        config = ExperimentConfig(grid_nodes=TEST_GRID, n_layers=2)
        result = cls().run(config)
        assert result.name == "fig6"
        table = result.to_table()
        assert "Fig. 6" in table and "imbalance" in table.lower()
        payload = json.loads(result.to_json())
        assert payload["experiment"] == "fig6"
        assert payload["n_layers"] == 2

    def test_table1_run_result(self):
        cls = get_experiment("table1")
        result = cls().run(ExperimentConfig())
        assert "Table 1" in result.to_table()
        assert json.loads(result.to_json())["experiment"] == "table1"

    def test_config_from_args_roundtrip(self):
        parser = build_parser()
        args = parser.parse_args(["fig6", "--grid", str(TEST_GRID), "--layers", "2"])
        cls = get_experiment(args.command)
        config = cls.config_from_args(args)
        assert config.grid_nodes == TEST_GRID
        assert config.n_layers == 2

    def test_config_options_helper(self):
        config = ExperimentConfig(options={"csv": "out.csv"})
        assert config.option("csv") == "out.csv"
        assert config.option("missing", 7) == 7

    def test_run_fig_shims_removed(self):
        # The pre-registry run_fig* compatibility shims are gone; the
        # engine-backed compute_fig* functions are the programmatic API.
        import repro.core.experiments as experiments

        for name in ("run_fig3", "run_fig5a", "run_fig5b", "run_fig6",
                     "run_fig7", "run_fig8"):
            assert not hasattr(experiments, name)
        result = experiments.compute_fig6(
            n_layers=2,
            grid_nodes=TEST_GRID,
            imbalances=(0.0, 0.5),
            converters_per_core=(4,),
        )
        assert len(result.vs_series[4]) == 2
