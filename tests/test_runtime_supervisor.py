"""Run supervisor: journal/resume, retry, quarantine, crash recovery."""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro.errors import ReproError, ResumeMismatchError
from repro.runtime import (
    PDNSpec,
    RunJournal,
    RunSupervisor,
    SupervisorConfig,
    SweepEngine,
    SweepPoint,
)
from repro.runtime.supervisor import task_fingerprint, run_fingerprint
from repro.runtime.engine import group_points

from tests.conftest import TEST_GRID

REL_TOL = 1e-12


def _spec(n_layers: int = 2) -> PDNSpec:
    return PDNSpec.regular(n_layers, grid_nodes=TEST_GRID)


def _points(n_groups: int = 2, per_group: int = 2):
    points = []
    for n_layers in range(2, 2 + n_groups):
        spec = _spec(n_layers)
        for i in range(per_group):
            activities = tuple([1.0 - 0.1 * i] + [1.0] * (n_layers - 1))
            points.append(SweepPoint(spec=spec, layer_activities=activities))
    return points


# Module-level extractors so they pickle into worker processes.
def _ir_extract(outcome):
    return outcome.unwrap().max_ir_drop()


def _crash_once_extract(outcome, marker=None):
    """Kill this worker process hard on the first call that sees the
    marker file (the unlink is atomic, so exactly one caller dies)."""
    if marker is not None:
        try:
            os.unlink(marker)
        except FileNotFoundError:
            pass
        else:
            os._exit(3)
    return outcome.unwrap().max_ir_drop()


def _hang_once_extract(outcome, marker=None):
    """Hang (past any sane deadline) on the first call that sees the
    marker file; instant on every retry."""
    if marker is not None:
        try:
            os.unlink(marker)
        except FileNotFoundError:
            pass
        else:
            time.sleep(120)
    return outcome.unwrap().max_ir_drop()


def _fail_tagged_extract(outcome):
    if outcome.point.tag == "poison":
        raise ValueError("injected extractor failure")
    return outcome.unwrap().max_ir_drop()


class TestFingerprints:
    def test_task_fingerprint_stable_across_processes_inputs(self):
        from functools import partial

        from repro.utils.rng import spawn_seeds

        def build(seed):
            spec = _spec()
            plan = partial(
                _ir_extract, rng=spawn_seeds(seed, 1)[0], fraction=0.1
            )
            points = [SweepPoint(spec=spec, fault_plan=plan, resilient=True)]
            groups = group_points(points)
            (key, members), = groups.items()
            return task_fingerprint(key, members)

        # Same seed -> identical generators by content (their reprs
        # differ by memory address) -> identical fingerprints.
        assert build(7) == build(7)
        assert build(7) != build(8)

    def test_run_fingerprint_depends_on_tasks(self):
        assert run_fingerprint(["a", "b"], 2) != run_fingerprint(["a"], 2)
        assert run_fingerprint(["a"], 2) != run_fingerprint(["a"], 3)


class TestSerialLifecycle:
    def test_plain_run_matches_engine(self):
        points = _points()
        supervised = RunSupervisor().run(points, extract=_ir_extract)
        plain = SweepEngine().run(points, extract=_ir_extract)
        assert supervised.values == plain.values
        report = supervised.report
        assert len(report.completed) == len(report.tasks) == 2
        assert not report.quarantined

    def test_quarantine_keeps_other_groups(self):
        spec_good, spec_bad = _spec(2), _spec(3)
        points = [
            SweepPoint(spec=spec_good),
            SweepPoint(spec=spec_bad, tag="poison"),
        ]
        sup = RunSupervisor(
            config=SupervisorConfig(max_retries=1, backoff_base_s=0.0)
        )
        result = sup.run(points, extract=_fail_tagged_extract)
        assert isinstance(result.values[0], float)
        assert result.values[1] is None
        report = result.report
        assert len(report.quarantined) == 1
        quarantined = report.quarantined[0]
        assert quarantined.attempts == 2  # 1 try + 1 retry
        assert "injected extractor failure" in quarantined.error
        assert report.quarantined_fingerprints() == [quarantined.fingerprint]
        assert result.metrics.quarantined == 1
        assert result.metrics.retries == 1

    def test_quarantine_without_extractor_yields_error_outcomes(self):
        from repro.errors import QuarantinedTopologyError

        class Boom(SweepEngine):
            def _run_group_local(self, key, members, extract, values):
                raise ValueError("always broken")

        sup = RunSupervisor(
            engine=Boom(),
            config=SupervisorConfig(max_retries=0, backoff_base_s=0.0),
        )
        result = sup.run([SweepPoint(spec=_spec())])
        outcome = result.values[0]
        assert isinstance(outcome.error, QuarantinedTopologyError)
        assert outcome.error.task == result.report.tasks[0].fingerprint

    def test_fail_fast_raises(self):
        points = [SweepPoint(spec=_spec(), tag="poison")]
        sup = RunSupervisor(config=SupervisorConfig(fail_fast=True))
        with pytest.raises(ReproError, match="fail-fast"):
            sup.run(points, extract=_fail_tagged_extract)

    def test_backoff_grows_and_caps(self):
        sup = RunSupervisor(
            config=SupervisorConfig(
                backoff_base_s=0.5, backoff_cap_s=2.0, backoff_jitter=0.0
            )
        )
        delays = [sup._backoff_delay(a) for a in (1, 2, 3, 4)]
        assert delays == [0.5, 1.0, 2.0, 2.0]
        jittered = RunSupervisor(
            config=SupervisorConfig(
                backoff_base_s=0.5, backoff_cap_s=2.0, backoff_jitter=0.5
            )
        )
        d = jittered._backoff_delay(1)
        assert 0.5 <= d <= 0.75


class TestJournalAndResume:
    def test_resume_is_bit_identical(self, tmp_path):
        points = _points(n_groups=3)
        baseline = SweepEngine().run(points, extract=_ir_extract)

        run_dir = tmp_path / "run"
        first = RunSupervisor(
            config=SupervisorConfig(run_dir=str(run_dir))
        ).run(points, extract=_ir_extract)
        (journal_path,) = run_dir.glob("journal-*.jsonl")

        # Simulate a SIGKILL mid-run: keep the header and the first
        # completed task record only.
        lines = journal_path.read_text().splitlines()
        journal_path.write_text("\n".join(lines[:2]) + "\n")

        resumed = RunSupervisor(
            config=SupervisorConfig(run_dir=str(run_dir), resume=True)
        ).run(points, extract=_ir_extract)

        # Bit-for-bit: restored AND re-run values equal the baseline.
        assert resumed.values == baseline.values == first.values
        assert resumed.metrics.resumed == 1
        assert len(resumed.report.resumed) == 1
        assert len(resumed.report.completed) == 3

    def test_corrupted_journal_line_reports_line_number(self, tmp_path):
        points = _points()
        run_dir = tmp_path / "run"
        RunSupervisor(config=SupervisorConfig(run_dir=str(run_dir))).run(
            points, extract=_ir_extract
        )
        (journal_path,) = run_dir.glob("journal-*.jsonl")
        lines = journal_path.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # truncated record
        journal_path.write_text("\n".join(lines) + "\n")

        with pytest.raises(ResumeMismatchError) as excinfo:
            RunSupervisor(
                config=SupervisorConfig(run_dir=str(run_dir), resume=True)
            ).run(points, extract=_ir_extract)
        assert excinfo.value.line == 2
        assert "line 2" in str(excinfo.value)

    def test_resume_missing_directory_raises(self, tmp_path):
        sup = RunSupervisor(
            config=SupervisorConfig(
                run_dir=str(tmp_path / "nope"), resume=True
            )
        )
        with pytest.raises(ResumeMismatchError, match="does not exist"):
            sup.run(_points(), extract=_ir_extract)

    def test_resume_without_matching_journal_starts_fresh(self, tmp_path):
        # A sub-run that never started before the crash has no journal:
        # resume must run it, not refuse.
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        result = RunSupervisor(
            config=SupervisorConfig(run_dir=str(run_dir), resume=True)
        ).run(_points(), extract=_ir_extract)
        assert all(isinstance(v, float) for v in result.values)
        assert result.metrics.resumed == 0
        assert list(run_dir.glob("journal-*.jsonl"))

    def test_journal_schema_mismatch(self, tmp_path):
        path = tmp_path / "journal-x.jsonl"
        path.write_text(
            json.dumps({"kind": "header", "schema": 999}) + "\n"
        )
        with pytest.raises(ResumeMismatchError, match="schema"):
            RunJournal.open_existing(path)

    def test_atomic_append_leaves_no_tmp(self, tmp_path):
        path = tmp_path / "journal-y.jsonl"
        journal = RunJournal.start(path, {"run_fingerprint": "y"})
        journal.append({"kind": "task", "fingerprint": "t", "status": "done"})
        assert not list(tmp_path.glob("*.tmp"))
        _, header, records = RunJournal.open_existing(path)
        assert header["run_fingerprint"] == "y"
        assert records["t"]["status"] == "done"

    def test_report_file_written(self, tmp_path):
        run_dir = tmp_path / "run"
        sup = RunSupervisor(config=SupervisorConfig(run_dir=str(run_dir)))
        result = sup.run(_points(), extract=_ir_extract)
        (report_path,) = run_dir.glob("report-*.json")
        payload = json.loads(report_path.read_text())
        assert payload["run_fingerprint"] == result.report.run_fingerprint
        assert payload["completed"] == 2
        assert payload["quarantined"] == []
        assert "escalations" in payload
        assert len(payload["tasks"]) == 2


class TestProcessRecovery:
    def test_worker_crash_is_retried_on_rebuilt_pool(self, tmp_path):
        from functools import partial

        marker = tmp_path / "crash-once"
        marker.write_text("armed")
        points = _points(n_groups=2)
        sup = RunSupervisor(
            config=SupervisorConfig(workers=2, backoff_base_s=0.0)
        )
        result = sup.run(
            points, extract=partial(_crash_once_extract, marker=str(marker))
        )
        assert result.metrics.mode == "process"
        assert not marker.exists()  # the crash really happened
        assert result.metrics.pool_rebuilds >= 1
        assert all(isinstance(v, float) for v in result.values)
        assert not result.report.quarantined
        # The crashed task was charged an attempt and then succeeded.
        assert any(t.attempts > 1 for t in result.report.tasks)

    def test_hung_worker_hits_deadline_and_recovers(self, tmp_path):
        from functools import partial

        marker = tmp_path / "hang-once"
        marker.write_text("armed")
        points = [SweepPoint(spec=_spec())]
        sup = RunSupervisor(
            config=SupervisorConfig(
                workers=1,
                task_timeout=3.0,
                backoff_base_s=0.0,
            )
        )
        result = sup.run(
            points, extract=partial(_hang_once_extract, marker=str(marker))
        )
        assert result.metrics.mode == "process"
        assert result.metrics.timeouts >= 1
        assert result.metrics.pool_rebuilds >= 1
        assert isinstance(result.values[0], float)
        assert result.report.tasks[0].timeouts >= 1

    def test_process_values_match_serial(self):
        points = _points(n_groups=3)
        serial = RunSupervisor().run(points, extract=_ir_extract)
        process = RunSupervisor(
            config=SupervisorConfig(workers=2)
        ).run(points, extract=_ir_extract)
        assert process.metrics.mode == "process"
        for a, b in zip(serial.values, process.values):
            assert a == pytest.approx(b, rel=REL_TOL)


class TestMetricsSchemaParity:
    @staticmethod
    def _key_tree(payload, prefix=""):
        keys = set()
        if isinstance(payload, dict):
            for k, v in payload.items():
                keys.add(f"{prefix}{k}")
                keys |= TestMetricsSchemaParity._key_tree(v, f"{prefix}{k}.")
        elif isinstance(payload, list):
            for item in payload:
                keys |= TestMetricsSchemaParity._key_tree(payload[0], prefix)
        return keys

    def test_serial_and_process_emit_same_schema(self):
        """The serial-fallback path must emit the exact stage-metrics
        schema the process path emits (satellite: schema parity)."""
        points = _points(n_groups=2)
        serial = SweepEngine(workers=1).run(points, extract=_ir_extract)
        process = SweepEngine(workers=2).run(points, extract=_ir_extract)
        assert serial.metrics.mode == "serial"
        assert process.metrics.mode == "process"
        serial_keys = self._key_tree(serial.metrics.to_json())
        process_keys = self._key_tree(process.metrics.to_json())
        assert serial_keys == process_keys
        # The supervisor's serial path too.
        supervised = RunSupervisor().run(points, extract=_ir_extract)
        assert self._key_tree(supervised.metrics.to_json()) == process_keys

    def test_bench_json_carries_robustness_counters(self, tmp_path, monkeypatch):
        from repro.runtime.metrics import BENCH_DIR_ENV

        monkeypatch.setenv(BENCH_DIR_ENV, str(tmp_path))
        sup = RunSupervisor(
            config=SupervisorConfig(max_retries=1, backoff_base_s=0.0)
        )
        points = [
            SweepPoint(spec=_spec(2)),
            SweepPoint(spec=_spec(3), tag="poison"),
        ]
        sup.run(points, extract=_fail_tagged_extract, bench_name="sup_unit")
        payload = json.loads((tmp_path / "BENCH_sup_unit.json").read_text())
        assert payload["schema"] == 8
        assert payload["run_fingerprint"] == sup.last_report.run_fingerprint
        assert payload["totals"]["retries"] == 1
        assert payload["totals"]["quarantined"] == 1
        assert payload["escalations"].get("lu", 0) >= 1


class TestEngineDuckTyping:
    def test_supervisor_slots_into_experiments(self):
        from repro.core.experiments.base import (
            ExperimentConfig,
            resolve_engine,
        )

        config = ExperimentConfig(grid_nodes=TEST_GRID, n_layers=2)
        assert isinstance(resolve_engine(config), SweepEngine)

        config.options["supervision"] = SupervisorConfig()
        engine = resolve_engine(config)
        assert isinstance(engine, RunSupervisor)
        # Pre-built engines are wrapped, not replaced.
        inner = SweepEngine()
        config.options["engine"] = inner
        wrapped = resolve_engine(config)
        assert isinstance(wrapped, RunSupervisor)
        assert wrapped.engine is inner

    def test_supervisor_surface_matches_engine(self):
        sup = RunSupervisor()
        assert sup.cache_info() == sup.engine.cache_info()
        sup.run([SweepPoint(spec=_spec())], extract=_ir_extract)
        assert sup.cache_info()["entries"] == 1
        sup.clear_cache()
        assert sup.cache_info()["entries"] == 0
        assert sup.workers == sup.engine.workers
