"""Stack-level configuration (paper Sec. 4, Table 2)."""

import math

import pytest

from repro.config.stackups import (
    PadAllocation,
    ProcessorSpec,
    StackConfig,
    TSV_TOPOLOGIES,
    dense_tsv,
    few_tsv,
    sparse_tsv,
)


class TestProcessorSpec:
    def test_paper_anchors(self):
        proc = ProcessorSpec()
        assert proc.core_count == 16
        assert proc.die_area == pytest.approx(44.12e-6)
        assert proc.peak_power == pytest.approx(7.6)
        assert proc.vdd == 1.0
        assert proc.frequency == pytest.approx(1e9)

    def test_die_side(self):
        proc = ProcessorSpec()
        assert proc.die_side == pytest.approx(math.sqrt(44.12e-6))

    def test_core_area(self):
        assert ProcessorSpec().core_area == pytest.approx(44.12e-6 / 16)

    def test_peak_current(self):
        assert ProcessorSpec().peak_current == pytest.approx(7.6)

    def test_layer_power_interpolates(self):
        proc = ProcessorSpec()
        assert proc.layer_power(0.0) == pytest.approx(proc.leakage_power)
        assert proc.layer_power(1.0) == pytest.approx(proc.peak_power)
        mid = proc.layer_power(0.5)
        assert proc.leakage_power < mid < proc.peak_power

    def test_dynamic_plus_leakage_is_peak(self):
        proc = ProcessorSpec()
        assert proc.dynamic_power + proc.leakage_power == pytest.approx(proc.peak_power)

    def test_layer_power_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ProcessorSpec().layer_power(1.5)


class TestTSVTopology:
    def test_table2_counts(self):
        assert dense_tsv().tsvs_per_core == 6650
        assert sparse_tsv().tsvs_per_core == 1675
        assert few_tsv().tsvs_per_core == 110

    def test_registry_complete(self):
        assert set(TSV_TOPOLOGIES) == {"Dense", "Sparse", "Few"}

    def test_vdd_gnd_split_covers_total(self):
        for topo in TSV_TOPOLOGIES.values():
            assert topo.vdd_tsvs_per_core + topo.gnd_tsvs_per_core == topo.tsvs_per_core

    def test_few_tsv_has_55_vdd(self):
        # Paper Sec. 5.1 quotes 55 Vdd TSVs per core for the Few topology.
        assert few_tsv().vdd_tsvs_per_core == 55

    def test_area_overheads_match_table2(self):
        core_area = ProcessorSpec().core_area
        # Table 2 quotes 24.2% / 6.1% / 0.4%; the KoZ model lands within
        # a few tenths of a percent of those (rounding in the paper).
        assert dense_tsv().area_overhead(core_area) == pytest.approx(0.242, abs=0.01)
        assert sparse_tsv().area_overhead(core_area) == pytest.approx(0.061, abs=0.005)
        assert few_tsv().area_overhead(core_area) == pytest.approx(0.004, abs=0.001)

    def test_effective_pitch_monotonic_with_density(self):
        core_area = ProcessorSpec().core_area
        assert (
            dense_tsv().effective_pitch(core_area)
            < sparse_tsv().effective_pitch(core_area)
            < few_tsv().effective_pitch(core_area)
        )


class TestPadAllocation:
    def test_fraction_allocation(self):
        pads = PadAllocation(power_fraction=0.25)
        # 25% of 1089 sites -> 272 power pads -> 136 Vdd.
        assert pads.vdd_pads(1089, 16) == 136

    def test_override_takes_precedence(self):
        pads = PadAllocation(power_fraction=0.25, vdd_pads_per_core_override=32)
        assert pads.vdd_pads(1089, 16) == 32 * 16

    def test_rejects_negative_override(self):
        with pytest.raises(ValueError):
            PadAllocation(vdd_pads_per_core_override=-1)


class TestStackConfig:
    def test_supply_voltage_scales_with_layers(self):
        stack = StackConfig(n_layers=8, grid_nodes=8)
        assert stack.stack_supply_voltage == pytest.approx(8.0)

    def test_total_peak_power(self):
        stack = StackConfig(n_layers=4, grid_nodes=8)
        assert stack.total_peak_power == pytest.approx(4 * 7.6)

    def test_cell_size(self):
        stack = StackConfig(n_layers=2, grid_nodes=10)
        assert stack.cell_size == pytest.approx(stack.processor.die_side / 10)

    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            StackConfig(n_layers=2, grid_nodes=2)
