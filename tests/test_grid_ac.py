"""AC (impedance vs frequency) analysis."""

import numpy as np
import pytest

from repro.core.scenarios import build_regular_pdn
from repro.grid.ac import ACAnalysis, pdn_impedance_profile
from repro.grid.dynamic import Capacitor, Inductor
from repro.grid.netlist import Circuit


def rlc_network():
    """Supply -> R -> L -> node b with C to ground."""
    c = Circuit()
    c.set_ground("gnd")
    c.add_voltage_source("in", "gnd", 1.0)
    c.add_resistor("in", "a", 1.0)
    return ACAnalysis(
        c,
        capacitors=[Capacitor("b", "gnd", 1e-9)],
        inductors=[Inductor("a", "b", 1e-9)],
    )


class TestAnalyticAgreement:
    def test_matches_closed_form_rlc(self):
        ac = rlc_network()
        freqs = np.logspace(6, 10, 60)
        prof = ac.impedance("b", "gnd", freqs)
        w = 2 * np.pi * freqs
        z_l = 1.0 + 1j * w * 1e-9  # R + jwL
        z_c = 1.0 / (1j * w * 1e-9)
        expected = z_l * z_c / (z_l + z_c)
        assert np.allclose(prof.impedance, expected, rtol=1e-9)

    def test_dc_limit_is_resistance(self):
        ac = rlc_network()
        prof = ac.impedance("b", "gnd", [0.0])
        assert abs(prof.impedance[0]) == pytest.approx(1.0, rel=1e-3)

    def test_anti_resonance_peak_location(self):
        ac = rlc_network()
        freqs = np.logspace(7, 9.5, 400)
        prof = ac.impedance("b", "gnd", freqs)
        peak_f, peak_z = prof.peak()
        # Q-shifted from the lossless 159 MHz; must sit within ~20%.
        assert peak_f == pytest.approx(159.2e6, rel=0.2)
        assert peak_z > 1.0  # rings above the DC resistance

    def test_capacitor_only_rolloff(self):
        c = Circuit()
        c.set_ground("gnd")
        c.add_resistor("x", "gnd", 1e9)  # keep the node referenced
        ac = ACAnalysis(c, capacitors=[Capacitor("x", "gnd", 1e-9)])
        prof = ac.impedance("x", "gnd", [1e6, 1e8])
        expected = 1.0 / (2 * np.pi * np.array([1e6, 1e8]) * 1e-9)
        assert np.allclose(prof.magnitude, expected, rtol=1e-3)


class TestInterface:
    def test_requires_ground(self):
        c = Circuit()
        c.add_resistor("a", "b", 1.0)
        with pytest.raises(ValueError, match="ground"):
            ACAnalysis(c)

    def test_rejects_empty_frequencies(self):
        with pytest.raises(ValueError):
            rlc_network().impedance("b", "gnd", [])

    def test_rejects_negative_frequencies(self):
        with pytest.raises(ValueError):
            rlc_network().impedance("b", "gnd", [-1.0])

    def test_profile_accessors(self):
        prof = rlc_network().impedance("b", "gnd", [1e6, 1e8])
        assert isinstance(prof.at(1e6), complex)
        assert prof.magnitude.shape == (2,)


class TestPDNImpedance:
    @pytest.fixture(scope="class")
    def profile(self):
        pdn = build_regular_pdn(2, grid_nodes=8, package_inductor_nodes=True)
        return pdn_impedance_profile(pdn, frequencies=np.logspace(5, 10, 16))

    def test_finite_and_positive(self, profile):
        assert np.all(np.isfinite(profile.magnitude))
        assert np.all(profile.magnitude > 0)

    def test_low_frequency_matches_static_resistance(self, profile):
        """At low frequency |Z| approaches the DC path resistance that
        the IR-drop analysis sees (sub-milliohm for this stack)."""
        assert profile.magnitude[0] < 5e-3

    def test_decap_rolls_off_high_frequency(self, profile):
        assert profile.magnitude[-1] < profile.magnitude[0]

    def test_rejects_bad_decap(self):
        pdn = build_regular_pdn(2, grid_nodes=8, package_inductor_nodes=True)
        with pytest.raises(ValueError):
            pdn_impedance_profile(pdn, decap_per_layer=0.0)
