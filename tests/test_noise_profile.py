"""Statistical noise profiling under sampled workloads."""

import numpy as np
import pytest

from repro.config.stackups import ProcessorSpec
from repro.core.noise_profile import NoiseProfile, NoiseProfiler
from repro.core.scenarios import build_stacked_pdn
from repro.workload.sampling import sample_suite

GRID = 8


@pytest.fixture(scope="module")
def profiler():
    pdn = build_stacked_pdn(4, converters_per_core=8, grid_nodes=GRID)
    suite = sample_suite(ProcessorSpec(), n_samples=300, rng=3)
    return NoiseProfiler(pdn, suite)


@pytest.fixture(scope="module")
def profiles(profiler):
    return profiler.compare_policies(trials=40, rng=11)


class TestNoiseProfile:
    def test_statistics_consistent(self, profiles):
        p = profiles["mixed"]
        assert p.percentile(0) <= p.mean <= p.worst
        assert p.percentile(95) <= p.worst

    def test_exceedance(self):
        profile = NoiseProfile(samples=np.array([0.01, 0.02, 0.03, 0.04]), policy="x")
        assert profile.exceedance_fraction(0.025) == pytest.approx(0.5)

    def test_samples_positive_and_bounded(self, profiles):
        for p in profiles.values():
            assert np.all(p.samples > 0)
            assert np.all(p.samples < 0.25)


class TestScheduling:
    def test_same_app_policy_quieter(self, profiles):
        """The paper's Sec. 5.2 recommendation, now on the full
        distribution rather than the average."""
        assert profiles["same-app"].mean < profiles["mixed"].mean

    def test_same_app_tail_quieter(self, profiles):
        assert profiles["same-app"].percentile(90) <= profiles["mixed"].percentile(90)

    def test_reproducible(self, profiler):
        a = profiler.profile("mixed", trials=10, rng=5)
        b = profiler.profile("mixed", trials=10, rng=5)
        assert np.array_equal(a.samples, b.samples)

    def test_unknown_policy_rejected(self, profiler):
        with pytest.raises(ValueError, match="policy"):
            profiler.profile("round-robin")

    def test_empty_suite_rejected(self):
        pdn = build_stacked_pdn(2, grid_nodes=GRID)
        with pytest.raises(ValueError):
            NoiseProfiler(pdn, {})


class TestTraceProfiling:
    def test_trace_is_ordered_time_series(self, profiler):
        trace = profiler.profile_trace(
            ["x264", "blackscholes", "canneal", "ferret"], n_windows=12, rng=4
        )
        assert trace.policy == "trace"
        assert len(trace.samples) == 12
        assert trace.worst >= trace.mean

    def test_trace_reproducible(self, profiler):
        apps = ["vips"] * 4
        a = profiler.profile_trace(apps, n_windows=8, rng=9)
        b = profiler.profile_trace(apps, n_windows=8, rng=9)
        assert np.array_equal(a.samples, b.samples)

    def test_steady_app_trace_quieter_than_bursty(self, profiler):
        steady = profiler.profile_trace(
            ["blackscholes"] * 4, n_windows=15, rng=2
        )
        bursty = profiler.profile_trace(["x264"] * 4, n_windows=15, rng=2)
        assert steady.worst <= bursty.worst + 1e-9

    def test_wrong_layer_count_rejected(self, profiler):
        with pytest.raises(ValueError, match="per layer"):
            profiler.profile_trace(["x264"], n_windows=4)
