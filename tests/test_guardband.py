"""Frequency guardbanding from supply noise."""

import pytest

from repro.core.experiments.fig6 import compute_fig6
from repro.core.guardband import AlphaPowerModel, fig6_guardbands


@pytest.fixture(scope="module")
def model():
    return AlphaPowerModel()


class TestAlphaPowerModel:
    def test_nominal_ratio_is_one(self, model):
        assert model.fmax_ratio(1.0) == pytest.approx(1.0)

    def test_lower_supply_slower(self, model):
        assert model.fmax_ratio(0.9) < 1.0

    def test_below_threshold_is_zero(self, model):
        assert model.fmax_ratio(0.3) == 0.0
        assert model.fmax_ratio(0.35) == 0.0

    def test_monotone_in_supply(self, model):
        ratios = [model.fmax_ratio(v) for v in (0.6, 0.8, 1.0, 1.2)]
        assert ratios == sorted(ratios)

    def test_guardband_zero_droop(self, model):
        assert model.guardband_for_droop(0.0) == pytest.approx(0.0)

    def test_guardband_grows_with_droop(self, model):
        assert model.guardband_for_droop(0.10) > model.guardband_for_droop(0.02)

    def test_five_percent_droop_costs_about_nine_percent_frequency(self, model):
        """Near-threshold amplification: alpha-power law makes a 5% Vdd
        droop cost ~2x that in frequency at Vth = 0.35 V."""
        guardband = model.guardband_for_droop(0.05)
        assert 0.05 < guardband < 0.15

    def test_validation(self):
        with pytest.raises(ValueError):
            AlphaPowerModel(threshold_voltage=1.2, nominal_vdd=1.0)
        with pytest.raises(ValueError):
            AlphaPowerModel(alpha=0.0)


class TestFig6Guardbands:
    @pytest.fixture(scope="class")
    def guardbands(self):
        result = compute_fig6(
            n_layers=4,
            imbalances=(0.0, 0.5, 1.0),
            converters_per_core=(2, 8),
            grid_nodes=8,
        )
        return fig6_guardbands(result, imbalance=0.5)

    def test_all_designs_present(self, guardbands):
        assert "Reg. PDN, Dense TSV" in guardbands
        assert "V-S PDN, 8 conv/core" in guardbands

    def test_skipped_points_are_none(self):
        result = compute_fig6(
            n_layers=4,
            imbalances=(1.0,),
            converters_per_core=(2,),
            grid_nodes=8,
        )
        bands = fig6_guardbands(result, imbalance=1.0)
        assert bands["V-S PDN, 2 conv/core"] is None

    def test_guardbands_in_sane_range(self, guardbands):
        for value in guardbands.values():
            if value is not None:
                assert 0.0 < value < 0.5

    def test_more_converters_need_less_guardband(self, guardbands):
        result = compute_fig6(
            n_layers=4,
            imbalances=(0.3,),
            converters_per_core=(4, 8),
            grid_nodes=8,
        )
        bands = fig6_guardbands(result, imbalance=0.3)
        assert bands["V-S PDN, 8 conv/core"] < bands["V-S PDN, 4 conv/core"]
