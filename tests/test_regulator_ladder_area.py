"""Ladder arrangement bookkeeping and converter area accounting."""

import pytest

from repro.config.converters import default_sc_spec
from repro.config.stackups import ProcessorSpec
from repro.regulator.area import converter_area, converters_area_overhead
from repro.regulator.ladder import design_ladder


class TestLadderDesign:
    def test_banks_count(self):
        ladder = design_ladder(n_layers=8, converters_per_core=4)
        assert ladder.banks == 7
        assert ladder.intermediate_rails == tuple(range(1, 8))

    def test_rail_span(self):
        ladder = design_ladder(n_layers=4, converters_per_core=2)
        assert ladder.rail_span(2) == (3, 1)

    def test_rail_span_rejects_endpoints(self):
        ladder = design_ladder(n_layers=4, converters_per_core=2)
        with pytest.raises(ValueError):
            ladder.rail_span(0)
        with pytest.raises(ValueError):
            ladder.rail_span(4)

    def test_total_converters(self):
        ladder = design_ladder(n_layers=3, converters_per_core=8)
        assert ladder.total_converters(core_count=16) == 2 * 8 * 16

    def test_mismatch_capability(self):
        ladder = design_ladder(n_layers=2, converters_per_core=4)
        assert ladder.max_mismatch_current_per_core() == pytest.approx(0.4)
        assert ladder.supports_imbalance(0.35)
        assert not ladder.supports_imbalance(0.45)

    def test_single_layer_rejected(self):
        with pytest.raises(ValueError):
            design_ladder(n_layers=1, converters_per_core=2)


class TestAreaAccounting:
    def test_paper_mim_area(self):
        assert converter_area(default_sc_spec()) == pytest.approx(0.472e-6)

    def test_technology_override(self):
        assert converter_area(default_sc_spec(), "trench") == pytest.approx(0.082e-6)

    def test_unknown_technology_rejected(self):
        with pytest.raises(ValueError):
            converter_area(default_sc_spec(), "unobtainium")

    def test_one_converter_is_three_percent_of_core(self):
        """Paper Sec. 5.2: one converter ~3% of an ARM core with
        high-density capacitors."""
        core_area = ProcessorSpec().core_area
        overhead = converters_area_overhead(
            default_sc_spec(), 1, core_area, technology="trench"
        )
        assert overhead == pytest.approx(0.03, abs=0.005)

    def test_eight_converters_match_dense_tsv_overhead(self):
        """Paper Sec. 5.2: 8 converters/core + Few TSV ~= Dense TSV area."""
        from repro.config.stackups import dense_tsv, few_tsv

        core_area = ProcessorSpec().core_area
        converters = converters_area_overhead(
            default_sc_spec(), 8, core_area, technology="trench"
        )
        vs_total = converters + few_tsv().area_overhead(core_area)
        dense_total = dense_tsv().area_overhead(core_area)
        assert vs_total == pytest.approx(dense_total, rel=0.05)

    def test_overhead_scales_linearly(self):
        core_area = ProcessorSpec().core_area
        one = converters_area_overhead(default_sc_spec(), 1, core_area)
        four = converters_area_overhead(default_sc_spec(), 4, core_area)
        assert four == pytest.approx(4 * one)
