"""Tables 1-2 report rendering."""

from repro.core.experiments.tables import table1_report, table2_report


class TestTable1:
    def test_contains_every_parameter(self):
        text = table1_report()
        for fragment in (
            "C4 Pad Pitch", "200", "10", "TSV Diameter", "5", "44.539", "9.88",
            "810,400,720",
        ):
            assert fragment in text

    def test_derived_sheet_resistance_shown(self):
        assert "Ohm/sq" in table1_report()


class TestTable2:
    def test_counts_match_paper(self):
        text = table2_report()
        for count in ("6650", "1675", "110"):
            assert count in text

    def test_overheads_close_to_paper(self):
        text = table2_report()
        # 23.5 / 5.9 / 0.39 land within rounding of 24.2 / 6.1 / 0.4.
        assert "23.5" in text
        assert "5.9" in text
        assert "0.389" in text
