"""Shared fixtures: small-grid stacks that keep PDN solves fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config.stackups import PadAllocation, ProcessorSpec, StackConfig, few_tsv
from repro.pdn.regular3d import RegularPDN3D
from repro.pdn.stacked3d import StackedPDN3D

#: Grid resolution used throughout the test suite (speed over detail).
TEST_GRID = 8


@pytest.fixture(scope="session")
def processor() -> ProcessorSpec:
    return ProcessorSpec()


@pytest.fixture(scope="session")
def small_stack(processor) -> StackConfig:
    """A 2-layer few-TSV stack at the test grid resolution."""
    return StackConfig(
        n_layers=2,
        processor=processor,
        tsv_topology=few_tsv(),
        pads=PadAllocation(power_fraction=0.25),
        grid_nodes=TEST_GRID,
    )


@pytest.fixture(scope="session")
def stack_4l(processor) -> StackConfig:
    """A 4-layer few-TSV stack at the test grid resolution."""
    return StackConfig(
        n_layers=4,
        processor=processor,
        tsv_topology=few_tsv(),
        pads=PadAllocation(power_fraction=0.25),
        grid_nodes=TEST_GRID,
    )


@pytest.fixture(scope="session")
def regular_pdn(small_stack) -> RegularPDN3D:
    return RegularPDN3D(small_stack)


@pytest.fixture(scope="session")
def stacked_pdn(small_stack) -> StackedPDN3D:
    return StackedPDN3D(small_stack, converters_per_core=4)


@pytest.fixture(scope="session")
def regular_result(regular_pdn):
    return regular_pdn.solve()


@pytest.fixture(scope="session")
def stacked_result(stacked_pdn):
    return stacked_pdn.solve()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
