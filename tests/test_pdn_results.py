"""PDNResult and ConductorGroup details."""

import numpy as np
import pytest

from repro.core.scenarios import build_stacked_pdn
from repro.pdn.results import ConductorGroup

GRID = 8


class TestConductorGroup:
    def test_counts_include_segments(self, regular_result):
        group = regular_result.conductor_groups["c4.vdd"]
        assert group.conductor_count == int(group.multiplicity.sum())

    def test_per_conductor_expansion(self, regular_result):
        group = regular_result.conductor_groups["c4.vdd"]
        currents = group.per_conductor_currents(regular_result.solution)
        assert len(currents) == group.conductor_count
        assert np.all(currents >= 0)

    def test_bundle_current_shared_equally(self, regular_result):
        group = regular_result.conductor_groups["c4.vdd"]
        bundle = np.abs(regular_result.solution.resistor_currents(group.tag))
        currents = group.per_conductor_currents(regular_result.solution)
        # Total conductor current equals total bundle current.
        assert currents.sum() == pytest.approx(bundle.sum(), rel=1e-9)

    def test_mismatched_multiplicity_rejected(self, regular_result):
        group = regular_result.conductor_groups["c4.vdd"]
        broken = ConductorGroup(
            tag=group.tag,
            ref=group.ref,
            multiplicity=group.multiplicity[:-1],
        )
        with pytest.raises(ValueError, match="branches"):
            broken.per_conductor_currents(regular_result.solution)


class TestPDNResultAccessors:
    def test_n_layers(self, regular_result, small_stack):
        assert regular_result.n_layers == small_stack.n_layers

    def test_ir_drop_map_per_layer(self, regular_result):
        for layer in range(regular_result.n_layers):
            drop_map = regular_result.ir_drop_map(layer)
            assert drop_map.shape == (GRID, GRID)
            assert np.all(drop_map >= 0)

    def test_max_ir_drop_is_max_of_maps(self, regular_result):
        per_layer = [
            regular_result.ir_drop_map(l).max()
            for l in range(regular_result.n_layers)
        ]
        assert regular_result.max_ir_drop() == pytest.approx(max(per_layer))

    def test_unknown_prefix_rejected(self, regular_result):
        with pytest.raises(KeyError):
            regular_result.conductor_currents("bondwire")

    def test_has_group_prefix(self, regular_result, stacked_result):
        assert regular_result.has_group_prefix("tsv")
        assert not regular_result.has_group_prefix("tvia")
        assert stacked_result.has_group_prefix("tvia")

    def test_regular_has_no_converter_accessors(self, regular_result):
        with pytest.raises(RuntimeError):
            regular_result.converter_currents()
        with pytest.raises(RuntimeError):
            regular_result.converters_within_rating()

    def test_converter_population(self, stacked_result, stacked_pdn):
        assert len(stacked_result.converter_currents()) == stacked_pdn.total_converters
