"""Consolidated report generation."""

import pytest

from repro.core.report import generate_report


@pytest.fixture(scope="module")
def report_text():
    return generate_report(grid_nodes=8)


class TestReport:
    def test_all_sections_present(self, report_text):
        for heading in (
            "Table 1", "Table 2", "Fig. 3", "Fig. 5a", "Fig. 5b",
            "Fig. 6", "Fig. 7", "Fig. 8", "Headline claims",
        ):
            assert heading in report_text

    def test_markdown_structure(self, report_text):
        assert report_text.startswith("# Reproduction report")
        assert report_text.count("```") % 2 == 0  # balanced code fences

    def test_grid_recorded(self, report_text):
        assert "8x8 nodes" in report_text

    def test_timing_footer(self, report_text):
        assert "Generated in" in report_text

    def test_cli_report_to_file(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "r.md"
        assert main(["report", "--grid", "8", "--output", str(out)]) == 0
        assert out.exists()
        assert "Headline" in out.read_text()

    def test_cli_sensitivity_and_noise(self, capsys):
        from repro.cli import main

        assert main(["sensitivity", "--grid", "8", "--layers", "2"]) == 0
        assert "package_resistance" in capsys.readouterr().out
        assert main(["noise", "--grid", "8", "--layers", "2", "--trials", "5"]) == 0
        assert "mixed" in capsys.readouterr().out

    def test_cli_fig6_csv_export(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "fig6.csv"
        assert main(["fig6", "--grid", "8", "--layers", "2", "--csv", str(out)]) == 0
        assert out.exists()
