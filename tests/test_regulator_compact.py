"""Seeman compact model of the 2:1 push-pull SC converter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.converters import SCConverterSpec
from repro.regulator.compact import SCCompactModel


@pytest.fixture(scope="module")
def model():
    return SCCompactModel()


class TestImpedances:
    def test_rseries_matches_paper(self, model):
        # Paper Sec. 3.1: RSERIES = 0.6 ohm for the implemented converter.
        assert model.r_series() == pytest.approx(0.6, abs=0.002)

    def test_rssl_scales_inverse_frequency(self, model):
        assert model.r_ssl(25e6) == pytest.approx(2 * model.r_ssl(50e6))

    def test_rfsl_frequency_independent(self, model):
        assert model.r_fsl() == model.r_fsl()

    def test_rseries_is_quadrature_sum(self, model):
        import math

        expected = math.hypot(model.r_ssl(), model.r_fsl())
        assert model.r_series() == pytest.approx(expected)

    def test_rpar_scales_inverse_frequency(self, model):
        assert model.r_par(25e6) == pytest.approx(2 * model.r_par(50e6))

    def test_bigger_fly_cap_lowers_rssl(self):
        small = SCCompactModel(SCConverterSpec(fly_capacitance=4e-9))
        big = SCCompactModel(SCConverterSpec(fly_capacitance=16e-9))
        assert big.r_ssl() < small.r_ssl()


class TestOperatingPoint:
    def test_ideal_output_is_midpoint(self, model):
        op = model.operating_point(2.0, 0.0, 0.0)
        assert op.ideal_output_voltage == pytest.approx(1.0)

    def test_output_drop_law(self, model):
        op = model.operating_point(2.0, 0.0, 0.05)
        assert op.voltage_drop == pytest.approx(0.05 * model.r_series())

    def test_sinking_raises_output(self, model):
        op = model.operating_point(2.0, 0.0, -0.05)
        assert op.output_voltage > op.ideal_output_voltage

    def test_efficiency_increases_with_load_open_loop(self, model):
        # Parasitic loss dominates at light load (Fig. 3b behaviour).
        low = model.operating_point(2.0, 0.0, 5e-3)
        high = model.operating_point(2.0, 0.0, 80e-3)
        assert high.efficiency > low.efficiency

    def test_efficiency_bounded(self, model):
        for load in (1e-3, 0.05, 0.1):
            op = model.operating_point(2.0, 0.0, load)
            assert 0.0 < op.efficiency < 1.0

    def test_input_power_bookkeeping(self, model):
        op = model.operating_point(2.0, 0.0, 0.04)
        assert op.input_power == pytest.approx(
            op.output_power + op.series_loss + op.parasitic_loss
        )

    def test_intermediate_rails(self, model):
        """The same model works between two non-ground rails."""
        op = model.operating_point(3.0, 1.0, 0.02)
        assert op.ideal_output_voltage == pytest.approx(2.0)

    def test_requires_positive_headroom(self, model):
        with pytest.raises(ValueError):
            model.operating_point(1.0, 1.0, 0.01)

    def test_check_load(self, model):
        assert model.check_load(0.1)
        assert model.check_load(-0.1)
        assert not model.check_load(0.11)

    @given(st.floats(min_value=-0.1, max_value=0.1))
    @settings(max_examples=50, deadline=None)
    def test_losses_never_negative(self, load):
        model = SCCompactModel()
        op = model.operating_point(2.0, 0.0, load)
        assert op.series_loss >= 0
        assert op.parasitic_loss > 0
