"""Array (weakest-element) lifetime statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.stats import norm

from repro.config.technology import EMParameters
from repro.em.array_mttf import (
    array_failure_cdf,
    expected_em_lifetime,
    lognormal_failure_cdf,
)


class TestLognormalCDF:
    def test_median_point(self):
        assert lognormal_failure_cdf(100.0, median=100.0, sigma=0.3) == pytest.approx(0.5)

    def test_zero_time(self):
        assert lognormal_failure_cdf(0.0, median=10.0, sigma=0.3) == 0.0

    def test_monotone(self):
        ts = np.linspace(1.0, 1000.0, 50)
        cdf = lognormal_failure_cdf(ts, median=100.0, sigma=0.3)
        assert np.all(np.diff(cdf) >= 0)

    def test_known_value(self):
        # One sigma in log space above the median.
        t = 100.0 * np.exp(0.3)
        assert lognormal_failure_cdf(t, 100.0, 0.3) == pytest.approx(norm.cdf(1.0))


class TestArrayCDF:
    def test_single_conductor_median(self):
        assert array_failure_cdf(50.0, np.array([50.0]), 0.3) == pytest.approx(0.5)

    def test_two_identical_conductors(self):
        # P = 1 - (1-F)^2 with F = 0.5.
        assert array_failure_cdf(50.0, np.array([50.0, 50.0]), 0.3) == pytest.approx(0.75)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            array_failure_cdf(1.0, np.array([]), 0.3)

    def test_large_array_numerically_stable(self):
        medians = np.full(100_000, 1000.0)
        p = array_failure_cdf(200.0, medians, 0.3)
        assert 0.0 <= p <= 1.0
        assert np.isfinite(p)


class TestExpectedLifetime:
    def test_single_conductor_returns_median(self):
        assert expected_em_lifetime(np.array([123.0])) == pytest.approx(123.0, rel=1e-6)

    def test_definition_p_half(self):
        medians = np.array([100.0, 150.0, 300.0])
        em = EMParameters()
        t = expected_em_lifetime(medians, em)
        assert array_failure_cdf(t, medians, em.sigma) == pytest.approx(0.5, abs=1e-6)

    def test_more_conductors_shorter_life(self):
        small = expected_em_lifetime(np.full(10, 100.0))
        large = expected_em_lifetime(np.full(10_000, 100.0))
        assert large < small

    def test_bounded_by_weakest_median(self):
        medians = np.array([100.0, 500.0, 900.0])
        assert expected_em_lifetime(medians) <= 100.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            expected_em_lifetime(np.array([0.0, 1.0]))

    @given(
        st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=50),
        st.floats(min_value=1.01, max_value=5.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_uniform_scaling(self, medians, factor):
        """Scaling every median by k scales the array lifetime by k."""
        base = np.array(medians)
        t0 = expected_em_lifetime(base)
        t1 = expected_em_lifetime(base * factor)
        assert t1 / t0 == pytest.approx(factor, rel=1e-4)

    @given(st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=2, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_adding_conductors_never_helps(self, medians):
        base = np.array(medians)
        without_last = expected_em_lifetime(base[:-1])
        with_all = expected_em_lifetime(base)
        assert with_all <= without_last * (1 + 1e-9)
