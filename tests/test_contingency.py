"""The N-k contingency experiment and its CLI surface."""

import pytest

from repro.cli import main
from repro.core.experiments import run_contingency
from tests.conftest import TEST_GRID


@pytest.fixture(scope="module")
def result():
    return run_contingency(
        n_layers=4,
        grid_nodes=TEST_GRID,
        fractions=(0.0, 0.2),
        seed=11,
    )


class TestSweep:
    def test_covers_both_arrangements(self, result):
        arrangements = {p.arrangement for p in result.points}
        assert arrangements == {"regular", "voltage-stacked"}
        # 2 fractions + the severed-layer row, per arrangement.
        assert len(result.points) == 6

    def test_pristine_baselines_are_clean(self, result):
        for arrangement in ("regular", "voltage-stacked"):
            base = result.baseline(arrangement)
            assert base.survived
            assert base.n_failed_conductors == 0
            assert base.n_islands == 0

    def test_damage_degrades_droop_monotonically(self, result):
        for arrangement in ("regular", "voltage-stacked"):
            pts = [
                p for p in result.arrangement_points(arrangement)
                if p.fraction is not None and p.survived
            ]
            pts.sort(key=lambda p: p.fraction)
            droops = [p.max_droop_fraction for p in pts]
            assert droops == sorted(droops)

    def test_severed_layer_row_reports_islands(self, result):
        for arrangement in ("regular", "voltage-stacked"):
            severed = [
                p for p in result.arrangement_points(arrangement)
                if p.fraction is None
            ]
            assert len(severed) == 1
            p = severed[0]
            # Never an unhandled crash: either pruned with diagnostics
            # or a typed error surfaced into the table.
            if p.survived:
                assert p.n_islands >= 1
                assert p.n_dropped_nodes > 0
            else:
                assert p.error

    def test_format_renders_table(self, result):
        text = result.format()
        assert "N-k contingency" in text
        assert "severed top layer" in text
        assert "voltage-stacked" in text

    def test_reproducible_with_seed(self):
        kwargs = dict(
            n_layers=2, grid_nodes=TEST_GRID, fractions=(0.1,),
            severed_layer=False, seed=5,
        )
        a = run_contingency(**kwargs)
        b = run_contingency(**kwargs)
        assert [p.max_droop_fraction for p in a.points] == [
            p.max_droop_fraction for p in b.points
        ]


class TestCLI:
    def test_contingency_command(self, capsys):
        code = main([
            "contingency", "--layers", "2", "--grid", str(TEST_GRID),
            "--seed", "3", "--fractions", "0,0.1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "N-k contingency" in out
        assert "voltage-stacked" in out

    def test_repro_error_exits_2(self, capsys):
        # An impossible sweep: 0 layers trips validation inside the
        # experiment via a typed error path at the CLI boundary.
        code = main([
            "contingency", "--layers", "2", "--grid", str(TEST_GRID),
            "--fractions", "2.0",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro:")
        assert "\n" == err[err.index("\n"):]  # one line only
