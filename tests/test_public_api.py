"""The package's public surface: imports, __all__, quickstart flow."""

import importlib

import pytest

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackages_importable(self):
        for module in (
            "repro.config",
            "repro.grid",
            "repro.power",
            "repro.floorplan",
            "repro.workload",
            "repro.regulator",
            "repro.pdn",
            "repro.em",
            "repro.thermal",
            "repro.core",
            "repro.core.experiments",
            "repro.analysis",
            "repro.utils",
        ):
            importlib.import_module(module)


class TestQuickstartFlow:
    def test_docstring_example_runs(self):
        pdn = repro.build_stacked_pdn(
            n_layers=2, converters_per_core=4, grid_nodes=8
        )
        result = pdn.solve()
        assert 0.0 < result.max_ir_drop_fraction() < 0.2

    def test_regular_builder(self):
        pdn = repro.build_regular_pdn(n_layers=2, topology="Dense", grid_nodes=8)
        assert pdn.solve().efficiency() > 0.8

    def test_builders_reject_unknown_topology(self):
        with pytest.raises(ValueError, match="topology"):
            repro.build_regular_pdn(n_layers=2, topology="Ultradense", grid_nodes=8)
