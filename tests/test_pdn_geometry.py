"""Grid geometry and physical-object distribution."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.stackups import StackConfig
from repro.pdn.geometry import (
    GridGeometry,
    cells_to_arrays,
    distribute_per_core,
    distribute_uniform,
)


@pytest.fixture(scope="module")
def geometry():
    return GridGeometry.from_stack(StackConfig(n_layers=2, grid_nodes=8))


class TestGridGeometry:
    def test_from_stack(self, geometry):
        assert geometry.grid_nodes == 8
        assert geometry.core_rows == 4 and geometry.core_cols == 4

    def test_cell_of_point_corners(self, geometry):
        assert geometry.cell_of_point(0.0, 0.0) == (0, 0)
        side = geometry.die_side
        assert geometry.cell_of_point(side * 0.999, side * 0.999) == (7, 7)

    def test_cell_of_point_clamps_outside(self, geometry):
        assert geometry.cell_of_point(-1.0, -1.0) == (0, 0)
        assert geometry.cell_of_point(1.0, 1.0) == (7, 7)

    def test_core_of_cell(self, geometry):
        assert geometry.core_of_cell((0, 0)) == (0, 0)
        assert geometry.core_of_cell((7, 7)) == (3, 3)

    def test_core_tile_origin(self, geometry):
        x, y = geometry.core_tile_origin(1, 2)
        tile = geometry.die_side / 4
        assert x == pytest.approx(2 * tile)
        assert y == pytest.approx(1 * tile)

    def test_non_square_core_count_rejected(self):
        from repro.config.stackups import ProcessorSpec

        stack = StackConfig(
            n_layers=2, grid_nodes=8, processor=ProcessorSpec(core_count=6)
        )
        with pytest.raises(ValueError, match="perfect square"):
            GridGeometry.from_stack(stack)


class TestDistribution:
    @given(st.integers(min_value=1, max_value=500))
    @settings(max_examples=40, deadline=None)
    def test_uniform_conserves_count(self, count):
        geometry = GridGeometry(grid_nodes=8, die_side=1e-3, core_rows=2, core_cols=2)
        cells = distribute_uniform(geometry, count)
        assert sum(cells.values()) == count

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_per_core_conserves_count(self, per_core):
        geometry = GridGeometry(grid_nodes=8, die_side=1e-3, core_rows=2, core_cols=2)
        cells = distribute_per_core(geometry, per_core)
        assert sum(cells.values()) == per_core * geometry.core_count

    def test_per_core_covers_every_core(self):
        geometry = GridGeometry(grid_nodes=8, die_side=1e-3, core_rows=4, core_cols=4)
        cells = distribute_per_core(geometry, 10)
        cores_hit = {geometry.core_of_cell(c) for c in cells}
        assert len(cores_hit) == 16

    def test_uniform_spreads_over_die(self):
        geometry = GridGeometry(grid_nodes=8, die_side=1e-3, core_rows=2, core_cols=2)
        cells = distribute_uniform(geometry, 64)
        # 64 objects over 64 cells of an 8x8 grid: every cell hit once.
        assert len(cells) == 64
        assert all(m == 1 for m in cells.values())

    def test_cells_to_arrays_alignment(self):
        cells = {(1, 2): 3, (0, 0): 1}
        j, i, m = cells_to_arrays(cells)
        assert list(j) == [0, 1]
        assert list(i) == [0, 2]
        assert list(m) == [1, 3]

    def test_cells_to_arrays_rejects_empty(self):
        with pytest.raises(ValueError):
            cells_to_arrays({})
