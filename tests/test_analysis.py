"""ASCII table and box-plot rendering."""

import pytest

from repro.analysis.boxplot import BoxStats, ascii_boxplot
from repro.analysis.tables import format_table


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["a", "b"], [(1, 2.5), (3, 4.0)])
        lines = text.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert "2.500" in text

    def test_none_renders_dash(self):
        text = format_table(["x"], [(None,)])
        assert "-" in text.splitlines()[-1]

    def test_title(self):
        text = format_table(["x"], [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [(1,)])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestBoxStats:
    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            BoxStats("x", 5.0, 1.0, 2.0, 3.0, 4.0)

    def test_accepts_degenerate(self):
        BoxStats("x", 1.0, 1.0, 1.0, 1.0, 1.0)


class TestAsciiBoxplot:
    def test_renders_all_labels(self):
        boxes = [
            BoxStats("alpha", 1, 2, 3, 4, 5),
            BoxStats("beta", 2, 3, 4, 5, 6),
        ]
        text = ascii_boxplot(boxes)
        assert "alpha" in text and "beta" in text

    def test_markers_present(self):
        text = ascii_boxplot([BoxStats("a", 0, 25, 50, 75, 100)], width=40)
        row = text.splitlines()[0]
        assert "[" in row and "]" in row and "M" in row and "|" in row

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_boxplot([])

    def test_narrow_width_rejected(self):
        with pytest.raises(ValueError):
            ascii_boxplot([BoxStats("a", 0, 1, 2, 3, 4)], width=5)

    def test_axis_labels(self):
        text = ascii_boxplot([BoxStats("a", 0.0, 1.0, 2.0, 3.0, 4.0)], unit="W")
        assert "0.00W" in text
        assert "4.00W" in text
