"""Scenario builders and remaining configuration edges."""

import pytest

from repro.config.stackups import TSV_TOPOLOGIES
from repro.core.scenarios import (
    VS_VDD_PADS_PER_CORE,
    build_regular_pdn,
    build_stacked_pdn,
    regular_stack,
    stacked_stack,
)

GRID = 8


class TestRegularStack:
    def test_defaults(self):
        stack = regular_stack(4, grid_nodes=GRID)
        assert stack.n_layers == 4
        assert stack.tsv_topology.name == "Few"
        assert stack.pads.power_fraction == 0.25

    def test_topology_selection(self):
        stack = regular_stack(2, topology="Dense", grid_nodes=GRID)
        assert stack.tsv_topology is TSV_TOPOLOGIES["Dense"]

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError, match="topology"):
            regular_stack(2, topology="Mega", grid_nodes=GRID)

    def test_pad_fraction_passthrough(self):
        stack = regular_stack(2, power_pad_fraction=0.75, grid_nodes=GRID)
        assert stack.pads.power_fraction == 0.75


class TestStackedStack:
    def test_vdd_pad_override(self):
        stack = stacked_stack(
            2, vdd_pads_per_core=VS_VDD_PADS_PER_CORE, grid_nodes=GRID
        )
        assert stack.pads.vdd_pads_per_core_override == 32

    def test_no_override_by_default(self):
        stack = stacked_stack(2, grid_nodes=GRID)
        assert stack.pads.vdd_pads_per_core_override == 0

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            stacked_stack(2, topology="Nano", grid_nodes=GRID)


class TestBuilders:
    def test_regular_builder_forwards_kwargs(self):
        from repro.config.technology import PackageModel

        pdn = build_regular_pdn(
            2, grid_nodes=GRID, package=PackageModel(resistance=1e-3)
        )
        assert pdn.package.resistance == pytest.approx(1e-3)

    def test_stacked_builder_converter_count(self):
        pdn = build_stacked_pdn(2, converters_per_core=6, grid_nodes=GRID)
        assert pdn.converters_per_core == 6

    def test_stacked_builder_inductor_nodes(self):
        pdn = build_stacked_pdn(2, grid_nodes=GRID, package_inductor_nodes=True)
        assert pdn.package_inductor_nodes


class TestFig5Accessors:
    @pytest.fixture(scope="class")
    def fig5a(self):
        from repro.core.experiments.fig5 import compute_fig5a

        return compute_fig5a(layers=(2, 4), grid_nodes=GRID)

    def test_improvement_against_custom_baseline(self, fig5a):
        value = fig5a.improvement_at(4, baseline="Reg. PDN, Sparse TSV")
        assert value > 0

    def test_degradation_custom_series(self, fig5a):
        loss = fig5a.regular_degradation("Reg. PDN, Dense TSV")
        assert 0 < loss < 1

    def test_unknown_layer_count_raises(self, fig5a):
        with pytest.raises(ValueError):
            fig5a.improvement_at(16)
