"""Fig. 7 experiment driver: workload distributions."""

import pytest

from repro.core.experiments.fig7 import compute_fig7


@pytest.fixture(scope="module")
def result():
    return compute_fig7(n_samples=1000, rng=20150607)


class TestFig7:
    def test_all_apps_present(self, result):
        assert len(result.samples) == 13

    def test_average_imbalance_near_65(self, result):
        """The paper's headline 65% suite average."""
        assert result.average_max_imbalance == pytest.approx(0.65, abs=0.05)

    def test_suite_max_above_90(self, result):
        assert result.suite_max_imbalance > 0.9

    def test_blackscholes_best_case(self, result):
        assert result.best_case_application() == "blackscholes"
        assert result.max_imbalances()["blackscholes"] == pytest.approx(0.10, abs=0.03)

    def test_box_stats_ordered(self, result):
        for box in result.box_stats():
            assert box.minimum <= box.q25 <= box.median <= box.q75 <= box.maximum

    def test_within_app_variance_smaller_than_suite(self, result):
        """Paper: samples of one application cluster tightly relative to
        the cross-application spread."""
        import numpy as np

        medians = [s.percentiles([50])[0] for s in result.samples.values()]
        suite_spread = max(medians) - min(medians)
        iqrs = [
            s.percentiles([75])[0] - s.percentiles([25])[0]
            for s in result.samples.values()
        ]
        assert np.median(iqrs) < suite_spread

    def test_format_renders_boxplot(self, result):
        text = result.format()
        assert "blackscholes" in text
        assert "M" in text  # median markers
