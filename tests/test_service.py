"""Service units: fingerprint cache, breaker, admission, CLI converters."""

from __future__ import annotations

import json
import time

import pytest

from repro.errors import (
    DeadlineExceededError,
    ReproError,
    ServiceOverloadError,
    ServiceProtocolError,
    TaskTimeoutError,
)
from repro.runtime import PDNSpec, SweepPoint
from repro.runtime.fingerprint import task_fingerprint
from repro.service import (
    CACHE_SCHEMA,
    CircuitBreaker,
    Deadline,
    ResultCache,
    query_fingerprint,
    spec_from_payload,
)
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN

from tests.conftest import TEST_GRID


def _spec(n_layers: int = 2) -> PDNSpec:
    return PDNSpec.regular(n_layers, grid_nodes=TEST_GRID)


# ----------------------------------------------------------------------
# query fingerprints
# ----------------------------------------------------------------------

class TestQueryFingerprint:
    def test_matches_supervisor_task_fingerprint(self):
        """A service cache key IS the journal fingerprint of the solve."""
        spec = _spec()
        point = SweepPoint(spec=spec)
        expected = task_fingerprint((spec, None, False, "lu"), [(0, point)])
        assert query_fingerprint(spec) == expected

    def test_activities_change_the_key(self):
        spec = _spec()
        base = query_fingerprint(spec)
        assert query_fingerprint(spec, [0.5, 1.0]) != base

    def test_solver_changes_the_key(self):
        spec = _spec()
        assert query_fingerprint(spec, solver="cholesky") != query_fingerprint(
            spec, solver="lu"
        )

    def test_deterministic(self):
        spec = _spec()
        assert query_fingerprint(spec, [0.7, 1.0]) == query_fingerprint(
            spec, [0.7, 1.0]
        )


class TestSpecPayload:
    def test_roundtrip_via_to_dict(self):
        spec = PDNSpec.stacked(4, converters_per_core=8, grid_nodes=TEST_GRID)
        assert spec_from_payload(spec.to_dict()) == spec

    def test_unknown_field_is_typed(self):
        with pytest.raises(ServiceProtocolError, match="unknown spec field"):
            spec_from_payload({"bogus": 1})

    def test_invalid_value_is_typed(self):
        with pytest.raises(ServiceProtocolError, match="invalid spec"):
            spec_from_payload({"arrangement": "sideways"})

    def test_non_object_is_typed(self):
        with pytest.raises(ServiceProtocolError, match="must be an object"):
            spec_from_payload([1, 2])


# ----------------------------------------------------------------------
# result cache
# ----------------------------------------------------------------------

class TestResultCache:
    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "c").open()
        cache.put("abc123", {"efficiency": 0.9})
        entry = cache.get("abc123")
        assert entry is not None
        assert entry.payload == {"efficiency": 0.9}
        assert not entry.stale
        assert cache.hits == 1 and cache.writes == 1

    def test_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "c").open()
        assert cache.get("nope") is None
        assert cache.misses == 1

    def test_persists_across_reopen(self, tmp_path):
        ResultCache(tmp_path / "c").open().put("k1", {"v": 1.5})
        cache = ResultCache(tmp_path / "c").open()
        assert cache.get("k1").payload == {"v": 1.5}

    def test_open_sweeps_stale_tmp_files(self, tmp_path):
        directory = tmp_path / "c"
        directory.mkdir()
        (directory / "result-dead.json.tmp").write_text("torn")
        ResultCache(directory).open()
        assert not (directory / "result-dead.json.tmp").exists()

    def test_corrupted_entry_is_dropped_as_miss(self, tmp_path):
        directory = tmp_path / "c"
        cache = ResultCache(directory).open()
        cache.put("bad1", {"v": 1})
        (directory / "result-bad1.json").write_text("{not json")
        assert cache.get("bad1") is None
        assert not (directory / "result-bad1.json").exists()

    def test_wrong_schema_is_dropped_as_miss(self, tmp_path):
        directory = tmp_path / "c"
        cache = ResultCache(directory).open()
        (directory / "result-old1.json").write_text(
            json.dumps({"schema": CACHE_SCHEMA + 1, "payload": {"v": 1}})
        )
        cache.open()
        assert cache.get("old1") is None

    def test_ttl_expiry_and_stale_serving(self, tmp_path):
        cache = ResultCache(tmp_path / "c", ttl_s=0.05).open()
        cache.put("k1", {"v": 2})
        assert cache.get("k1") is not None
        time.sleep(0.08)
        # Expired: a normal lookup misses, the degraded path still hits.
        assert cache.get("k1") is None
        stale = cache.get("k1", allow_stale=True)
        assert stale is not None and stale.stale
        assert stale.age_s > 0.05
        assert cache.stale_hits == 1

    def test_lru_eviction_under_size_cap(self, tmp_path):
        payload = {"pad": "x" * 200}
        cache = ResultCache(tmp_path / "c", max_mb=0.0005).open()
        cache.put("old", payload)
        # Cap at ~2.5 entries so inserting the third evicts exactly one.
        cache.max_bytes = int(cache.size_bytes() * 2.5)
        time.sleep(0.02)
        cache.put("mid", payload)
        time.sleep(0.02)
        cache.get("old")  # bump: now "mid" is the LRU entry
        cache.put("new", payload)
        assert cache.get("new") is not None  # newest is protected
        assert cache.get("old") is not None  # recently used survived
        assert cache.get("mid") is None  # LRU victim
        assert cache.evictions >= 1

    def test_cap_smaller_than_one_entry_keeps_newest(self, tmp_path):
        cache = ResultCache(tmp_path / "c", max_mb=1e-6).open()
        cache.put("only", {"v": 1})
        assert cache.get("only") is not None

    def test_counters_shape(self, tmp_path):
        cache = ResultCache(tmp_path / "c").open()
        counters = cache.counters()
        assert set(counters) == {
            "entries", "size_bytes", "hits", "misses", "stale_hits",
            "writes", "evictions", "corrupt", "epoch_misses",
        }


# ----------------------------------------------------------------------
# deadlines
# ----------------------------------------------------------------------

class TestDeadline:
    def test_unbounded(self):
        deadline = Deadline.after(None)
        assert deadline.remaining_s() is None
        assert not deadline.expired()
        deadline.check()  # never raises

    def test_remaining_counts_down(self):
        deadline = Deadline.after(10.0)
        remaining = deadline.remaining_s()
        assert 9.0 < remaining <= 10.0

    def test_expiry_is_typed_and_a_task_timeout(self):
        deadline = Deadline.after(0.01)
        time.sleep(0.03)
        assert deadline.expired()
        assert deadline.remaining_s() == 0.0
        with pytest.raises(DeadlineExceededError) as exc_info:
            deadline.check("fp123")
        # DeadlineExceededError IS a TaskTimeoutError: callers that
        # already handle task timeouts handle deadlines for free.
        assert isinstance(exc_info.value, TaskTimeoutError)
        assert "fp123" in str(exc_info.value)


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------

class _FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=10.0)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        allowed, probe = breaker.allow()
        assert not allowed and not probe

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=10.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_after_cooldown_single_probe(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=5.0, clock=clock
        )
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.now += 5.0
        assert breaker.state == HALF_OPEN
        allowed, probe = breaker.allow()
        assert allowed and probe
        # Only ONE probe: concurrent callers are still rejected.
        assert breaker.allow() == (False, False)

    def test_probe_success_closes(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=5.0, clock=clock
        )
        breaker.record_failure()
        clock.now += 5.0
        assert breaker.allow() == (True, True)
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow() == (True, False)

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=5.0, clock=clock
        )
        breaker.record_failure()
        clock.now += 5.0
        assert breaker.allow() == (True, True)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.now += 2.0  # cooldown restarted: still open
        assert breaker.state == OPEN
        clock.now += 3.0
        assert breaker.state == HALF_OPEN

    def test_retry_after_counts_down(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=8.0, clock=clock
        )
        breaker.record_failure()
        assert breaker.retry_after_s() == pytest.approx(8.0)
        clock.now += 3.0
        assert breaker.retry_after_s() == pytest.approx(5.0)

    def test_half_open_race_grants_exactly_one_probe(self):
        """Concurrent allow() at the half-open instant: one probe, ever.

        Many worker threads can observe the cooldown expiring at the
        same moment; the probe slot must be handed out exactly once or
        a still-broken backend gets hammered by N probes at once.
        """
        import threading

        clock = _FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=5.0, clock=clock
        )
        breaker.record_failure()
        clock.now += 5.0
        start = threading.Barrier(8)
        verdicts = []
        lock = threading.Lock()

        def contender():
            start.wait()
            verdict = breaker.allow()
            with lock:
                verdicts.append(verdict)

        threads = [threading.Thread(target=contender) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert verdicts.count((True, True)) == 1
        assert verdicts.count((False, False)) == 7

    def test_probe_slot_not_leaked_across_reopen(self):
        """A failed probe must free the slot for the NEXT window's probe.

        If ``_probe_inflight`` leaked True through the open->half-open
        cycle the breaker would never probe again and stay effectively
        open forever.
        """
        clock = _FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=5.0, clock=clock
        )
        breaker.record_failure()
        for _ in range(3):  # several probe windows in a row
            clock.now += 5.0
            assert breaker.allow() == (True, True)
            # Concurrent caller while the probe is in flight: rejected.
            assert breaker.allow() == (False, False)
            breaker.record_failure()
            assert breaker.state == OPEN
        clock.now += 5.0
        assert breaker.allow() == (True, True)
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_snapshot_and_transitions(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0)
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap["state"] == OPEN and snap["state_code"] == 1
        assert dict(breaker.transitions())["open"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=0)


# ----------------------------------------------------------------------
# admission (event-loop bits are exercised in test_service_server)
# ----------------------------------------------------------------------

class TestAdmissionQueue:
    def test_shed_is_typed_with_retry_hint(self):
        import asyncio

        from repro.service import AdmissionQueue

        async def scenario():
            queue = AdmissionQueue(max_queue=2)
            queue.submit("a", Deadline.after(None))
            queue.submit("b", Deadline.after(None))
            with pytest.raises(ServiceOverloadError) as exc_info:
                queue.submit("c", Deadline.after(None))
            error = exc_info.value
            assert error.limit == 2
            assert error.retry_after_s is not None
            counters = queue.counters()
            assert counters["shed"] == 1 and counters["admitted"] == 2
            assert counters["depth"] == 2

        asyncio.run(scenario())

    def test_retry_hint_monotone_under_sustained_overload(self):
        """Consecutive sheds ramp the hint; it never decreases mid-storm.

        A client obeying the hints therefore backs off further and
        further instead of hammering an overloaded server at a fixed
        cadence; one successful admission resets the ramp.
        """
        import asyncio

        from repro.service import AdmissionQueue

        async def scenario():
            queue = AdmissionQueue(max_queue=1)
            queue.submit("fill", Deadline.after(None))
            hints = []
            for _ in range(12):
                with pytest.raises(ServiceOverloadError) as exc_info:
                    queue.submit("again", Deadline.after(None))
                hints.append(exc_info.value.retry_after_s)
            assert hints[0] == pytest.approx(queue.retry_base_s)
            assert all(b >= a for a, b in zip(hints, hints[1:]))
            assert hints[-1] == pytest.approx(queue.retry_cap_s)
            assert max(hints) <= queue.retry_cap_s
            # The ramp resets once a query actually gets in.
            await queue.next()
            queue.task_done()
            queue.submit("admitted", Deadline.after(None))
            assert queue.retry_after_s() == pytest.approx(queue.retry_base_s)

        asyncio.run(scenario())

    def test_validation(self):
        from repro.service import AdmissionQueue

        with pytest.raises(ValueError):
            AdmissionQueue(max_queue=0)


# ----------------------------------------------------------------------
# CLI: the --deadline converter fails closed on both subcommands
# ----------------------------------------------------------------------

class TestDeadlineFlag:
    @pytest.mark.parametrize("command", ["serve", "query"])
    @pytest.mark.parametrize("value", ["0", "-1", "nan", "inf", "soon"])
    def test_bad_deadline_is_one_line_exit_2(self, command, value, capsys):
        from repro.cli import main

        assert main([command, "--deadline", value]) == 2
        err = capsys.readouterr().err
        assert "--deadline" in err
        assert "Traceback" not in err

    def test_bad_activities_is_one_line_exit_2(self, capsys):
        from repro.cli import main

        assert main(["query", "--activities", "0.5,oops"]) == 2
        assert "--activities" in capsys.readouterr().err


class TestErrors:
    def test_overload_error_fields(self):
        error = ServiceOverloadError(
            "full", queue_depth=9, limit=8, retry_after_s=0.5
        )
        assert error.queue_depth == 9
        assert error.limit == 8
        assert isinstance(error, ReproError)

    def test_deadline_error_is_task_timeout(self):
        error = DeadlineExceededError("late", task="fp", timeout_s=1.0)
        assert isinstance(error, TaskTimeoutError)
        assert error.timeout_s == 1.0
