"""The voltage-stacked 3D PDN: charge recycling and regulation."""

import numpy as np
import pytest

from repro.config.stackups import PadAllocation, StackConfig, TSV_TOPOLOGIES
from repro.pdn.stacked3d import StackedPDN3D
from repro.workload.imbalance import interleaved_layer_activities

GRID = 8


def make(n_layers=2, converters=4, vdd_pads_override=0, **kwargs):
    stack = StackConfig(
        n_layers=n_layers,
        grid_nodes=GRID,
        tsv_topology=TSV_TOPOLOGIES["Few"],
        pads=PadAllocation(
            power_fraction=0.25, vdd_pads_per_core_override=vdd_pads_override
        ),
    )
    return StackedPDN3D(stack, converters_per_core=converters, **kwargs)


class TestChargeRecycling:
    def test_offchip_current_is_one_layer_worth(self, stacked_result, small_stack):
        """The defining V-S property: the stack draws roughly the
        current of a single layer from the supply."""
        one_layer = small_stack.processor.peak_current
        supplied = stacked_result.solution.vsource_currents("supply")[0]
        assert supplied == pytest.approx(one_layer, rel=0.1)

    def test_offchip_current_independent_of_layer_count(self):
        i2 = make(n_layers=2).solve().solution.vsource_currents("supply")[0]
        i4 = make(n_layers=4).solve().solution.vsource_currents("supply")[0]
        assert i4 == pytest.approx(i2, rel=0.05)

    def test_supply_voltage_is_boosted(self, stacked_pdn, small_stack):
        store = stacked_pdn.circuit.store("vsource")
        assert store.column("voltage")[0] == pytest.approx(
            small_stack.n_layers * small_stack.processor.vdd
        )

    def test_intermediate_rails_near_multiples_of_vdd(self):
        pdn = make(n_layers=4)
        result = pdn.solve()
        # Sample the middle of each layer's Vdd net (rail l+1).
        mid = GRID // 2
        for layer in range(4):
            v = result.solution.voltage_by_id(
                np.array([pdn.vdd_ids[layer][mid, mid]])
            )[0]
            assert v == pytest.approx(layer + 1.0, abs=0.15)

    def test_per_pad_current_flat_vs_layers(self):
        c2 = make(n_layers=2).solve().conductor_currents("c4").mean()
        c4 = make(n_layers=4).solve().conductor_currents("c4").mean()
        assert c4 == pytest.approx(c2, rel=0.1)


class TestConverterBehaviour:
    def test_balanced_load_small_converter_currents(self, stacked_result, small_stack):
        # Perfectly matched layers need almost no regulation current.
        max_conv = stacked_result.max_converter_current()
        assert max_conv < 0.2 * small_stack.processor.peak_current / 16

    def test_imbalance_loads_converters(self):
        pdn = make(n_layers=2, converters=8)
        balanced = pdn.solve(layer_activities=np.ones(2))
        skewed = pdn.solve(layer_activities=np.array([1.0, 0.5]))
        assert skewed.max_converter_current() > balanced.max_converter_current()

    def test_converter_current_magnitude(self):
        """Mismatch current per core splits across the bank's cells."""
        pdn = make(n_layers=2, converters=4)
        proc = pdn.stack.processor
        imbalance = 0.5
        result = pdn.solve(
            layer_activities=interleaved_layer_activities(2, imbalance)
        )
        expected = imbalance * proc.dynamic_power / proc.vdd / 16 / 4
        mean_conv = result.converter_currents().mean()
        assert mean_conv == pytest.approx(expected, rel=0.5)

    def test_rating_violation_detected(self):
        pdn = make(n_layers=2, converters=1)
        result = pdn.solve(layer_activities=interleaved_layer_activities(2, 1.0))
        assert not result.converters_within_rating()

    def test_rating_ok_with_enough_converters(self):
        pdn = make(n_layers=2, converters=8)
        result = pdn.solve(layer_activities=interleaved_layer_activities(2, 0.5))
        assert result.converters_within_rating()

    def test_more_converters_less_noise(self):
        act = interleaved_layer_activities(2, 0.6)
        few = make(n_layers=2, converters=2).solve(layer_activities=act)
        many = make(n_layers=2, converters=8).solve(layer_activities=act)
        assert many.max_ir_drop_fraction() < few.max_ir_drop_fraction()

    def test_noise_grows_with_imbalance(self):
        pdn = make(n_layers=2, converters=8)
        low = pdn.solve(layer_activities=interleaved_layer_activities(2, 0.2))
        high = pdn.solve(layer_activities=interleaved_layer_activities(2, 0.8))
        assert high.max_ir_drop_fraction() > low.max_ir_drop_fraction()


class TestEfficiency:
    def test_more_converters_lower_efficiency(self):
        """Open-loop parasitic loss scales with converter count (Fig. 8)."""
        act = np.ones(2)
        few = make(n_layers=2, converters=2).solve(layer_activities=act)
        many = make(n_layers=2, converters=8).solve(layer_activities=act)
        assert many.efficiency() < few.efficiency()

    def test_efficiency_drops_with_imbalance(self):
        pdn = make(n_layers=2, converters=8)
        low = pdn.solve(layer_activities=interleaved_layer_activities(2, 0.1))
        high = pdn.solve(layer_activities=interleaved_layer_activities(2, 0.9))
        assert high.efficiency() < low.efficiency()

    def test_power_balance_with_converters(self, stacked_result):
        assert stacked_result.solution.power_balance_error() < 1e-6


class TestThroughVias:
    def test_through_via_population(self):
        pdn = make(n_layers=4, vdd_pads_override=32)
        result = pdn.solve()
        n_vdd_pads = 32 * 16
        tvia = result.conductor_currents("tvia")
        assert len(tvia) == n_vdd_pads * 3  # (N-1) segments per pad

    def test_through_via_current_equals_pad_current(self):
        pdn = make(n_layers=4, vdd_pads_override=32)
        result = pdn.solve()
        assert result.conductor_currents("tvia").max() == pytest.approx(
            result.conductor_currents("c4.vdd").max()
        )

    def test_fewer_vdd_pads_raise_via_current(self):
        few_pads = make(n_layers=2, vdd_pads_override=8).solve()
        many_pads = make(n_layers=2, vdd_pads_override=32).solve()
        assert (
            few_pads.conductor_currents("tvia").mean()
            > many_pads.conductor_currents("tvia").mean()
        )


class TestConstruction:
    def test_single_layer_rejected(self):
        stack = StackConfig(n_layers=1, grid_nodes=GRID)
        with pytest.raises(ValueError, match="at least 2"):
            StackedPDN3D(stack)

    def test_total_converters(self):
        pdn = make(n_layers=4, converters=6)
        assert pdn.total_converters == 3 * 6 * 16

    def test_converter_metadata_present(self, stacked_result):
        assert stacked_result.converter_currents().size > 0
