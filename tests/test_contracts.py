"""Physics contracts: severity routing, the hardened driver, degradation."""

import numpy as np
import pytest

from repro.config.stackups import PadAllocation, ProcessorSpec, StackConfig, few_tsv
from repro.contracts import (
    ContractCheck,
    ContractPolicy,
    ContractReport,
    ContractWarning,
    FixedPointDivergence,
    check_em_monotonicity,
    check_pdn_result,
    contract_policy,
    enforce,
    fixed_point,
    policy_from_env,
)
from repro.errors import ContractViolationError, ConvergenceError, ReproError
from repro.faults import FaultPlan
from repro.pdn.closedloop import ClosedLoopSystemSolver
from repro.power.thermal_feedback import LeakageThermalLoop, ThermalRunawayError
from repro.thermal.grid3d import ThermalConfig

from tests.conftest import TEST_GRID


def _stack(n_layers: int) -> StackConfig:
    return StackConfig(
        n_layers=n_layers,
        processor=ProcessorSpec(),
        tsv_topology=few_tsv(),
        pads=PadAllocation(power_fraction=0.25),
        grid_nodes=TEST_GRID,
    )


# ----------------------------------------------------------------------
# fixed_point driver
# ----------------------------------------------------------------------
class TestFixedPointDriver:
    def test_converges_on_contraction(self):
        # g(x) = 0.5 x + 1 has the fixed point x = 2.
        fp = fixed_point(
            lambda x: 0.5 * x + 1.0, [0.0], tolerance=1e-12, max_iterations=100
        )
        assert fp.converged and not fp.degraded
        assert fp.x[0] == pytest.approx(2.0, abs=1e-10)
        assert fp.residual_trace[0] > fp.residual_trace[-1]
        assert fp.best_iteration == fp.iterations

    def test_plain_picard_is_bit_exact(self):
        # With d == 1 the accepted iterate is the step output itself,
        # not x + 1.0 * (g - x) (which rounds differently).
        outputs = []

        def step(x):
            g = 0.3 * x + 0.123456789
            outputs.append(g.copy())
            return g

        fp = fixed_point(step, [1.0], tolerance=1e-9, max_iterations=50)
        assert fp.converged
        assert fp.x[0] == outputs[-1][0]  # bitwise identical

    def test_min_iterations_blocks_first_iterate(self):
        # Start exactly at the fixed point: residual 0 at k=1, but
        # min_iterations=2 forces a second evaluation (legacy semantics).
        fp = fixed_point(
            lambda x: x.copy(), [3.0], tolerance=1e-9, max_iterations=10,
            min_iterations=2,
        )
        assert fp.converged
        assert fp.iterations == 2

    def test_oscillation_flagged_without_damping(self):
        # g(x) = 1 - x flips between 0 and 1 forever.
        fp = fixed_point(
            lambda x: 1.0 - x, [0.0], tolerance=1e-6, max_iterations=12,
            adaptive_damping=False,
        )
        assert not fp.converged and fp.degraded
        assert fp.oscillating
        assert len(fp.residual_trace) == 12

    def test_damping_resolves_oscillation(self):
        # With adaptive damping the same map settles onto x = 0.5.
        fp = fixed_point(
            lambda x: 1.0 - x, [0.0], tolerance=1e-6, max_iterations=60
        )
        assert fp.converged
        assert fp.x[0] == pytest.approx(0.5, abs=1e-5)
        assert fp.damping < 1.0

    def test_divergence_detected_from_residual_growth(self):
        # g(x) = x^2 from x0=2: the relative residual |x - 1| explodes.
        fp = fixed_point(
            lambda x: x * x, [2.0], tolerance=1e-9, max_iterations=200,
            adaptive_damping=False,
        )
        assert fp.diverged and fp.degraded
        assert "residual grew" in fp.reason
        assert fp.iterations < 200  # aborted early

    def test_step_declared_divergence(self):
        def step(x):
            raise FixedPointDivergence("model left its validity range")

        fp = fixed_point(step, [1.0], tolerance=1e-9, max_iterations=10)
        assert fp.diverged and fp.degraded and not fp.converged
        assert fp.reason == "model left its validity range"

    def test_on_failure_raise_carries_diagnostics(self):
        with pytest.raises(ConvergenceError) as excinfo:
            fixed_point(
                lambda x: 1.0 - x, [0.0], tolerance=1e-6, max_iterations=5,
                adaptive_damping=False, on_failure="raise",
            )
        diagnostics = excinfo.value.diagnostics
        assert diagnostics.degraded and diagnostics.oscillating

    def test_anderson_accelerates_stiff_linear_map(self):
        # A slow contraction (rate 0.95): Anderson solves the secant
        # system exactly for affine maps, far fewer iterations.
        def step(x):
            return 0.95 * x + 1.0

        plain = fixed_point(step, [0.0], tolerance=1e-10, max_iterations=500)
        accelerated = fixed_point(
            step, [0.0], tolerance=1e-10, max_iterations=500, anderson_m=2
        )
        assert plain.converged and accelerated.converged
        assert accelerated.x[0] == pytest.approx(20.0, rel=1e-8)
        assert accelerated.iterations < plain.iterations / 5

    def test_argument_validation(self):
        step = lambda x: x  # noqa: E731
        with pytest.raises(ValueError):
            fixed_point(step, [0.0], tolerance=-1.0, max_iterations=5)
        with pytest.raises(ValueError):
            fixed_point(step, [0.0], tolerance=1e-6, max_iterations=5, damping=1.5)
        with pytest.raises(ValueError):
            fixed_point(
                step, [0.0], tolerance=1e-6, max_iterations=5, on_failure="explode"
            )


# ----------------------------------------------------------------------
# severity policies and enforcement
# ----------------------------------------------------------------------
def _failing_report(severity: str) -> ContractReport:
    return ContractReport(
        checks=[
            ContractCheck(
                name="kcl_residual", passed=False, severity=severity,
                observed=1.0, limit=1e-6, message="power imbalance",
            )
        ]
    )


class TestSeverityRouting:
    def test_record_is_silent(self, recwarn):
        report = enforce(_failing_report("record"))
        assert not report.passed
        assert report.histogram() == {"record": 1}
        assert len(recwarn) == 0

    def test_warn_emits_contract_warning(self):
        with pytest.warns(ContractWarning, match="kcl_residual"):
            enforce(_failing_report("warn"))

    def test_raise_carries_the_report(self):
        with pytest.raises(ContractViolationError) as excinfo:
            enforce(_failing_report("raise"))
        assert excinfo.value.report.violations()[0].name == "kcl_residual"

    def test_degraded_cap(self):
        policy = ContractPolicy()
        assert policy.severity_for("kcl_residual") == "raise"
        assert policy.severity_for("kcl_residual", degraded=True) == "record"
        assert policy.severity_for("voltage_bounds") == "warn"

    def test_policy_from_env(self):
        assert not policy_from_env("off").enabled
        assert policy_from_env("").override is None
        assert policy_from_env("raise").override == "raise"
        with pytest.raises(ReproError, match="REPRO_CONTRACTS"):
            policy_from_env("loudly")

    def test_contract_policy_context_restores(self):
        from repro.contracts import get_policy

        before = get_policy()
        with contract_policy(override="record") as scoped:
            assert get_policy() is scoped
        assert get_policy() is before


# ----------------------------------------------------------------------
# PDN result contracts
# ----------------------------------------------------------------------
class TestPDNContracts:
    def test_clean_solve_attaches_passing_report(self, stacked_result):
        report = stacked_result.contracts
        assert report is not None and report.passed
        names = {check.name for check in report.checks}
        assert {"finite_fields", "kcl_residual", "passivity",
                "voltage_bounds", "efficiency_range"} <= names
        if stacked_result.diagnostics is not None:
            assert stacked_result.diagnostics.contracts is report
        assert not stacked_result.degraded
        assert report.to_json()["passed"] is True

    def test_clean_solve_survives_raise_override(self, stacked_pdn):
        with contract_policy(override="raise"):
            result = stacked_pdn.solve()
        assert result.contracts.passed

    def test_disabled_policy_skips_checks(self, stacked_pdn):
        with contract_policy(enabled=False):
            result = stacked_pdn.solve()
        assert result.contracts is None

    def test_faulted_solve_records_instead_of_raising(self, recwarn):
        from repro.pdn.stacked3d import StackedPDN3D
        from repro.workload.imbalance import interleaved_layer_activities

        pdn = StackedPDN3D(_stack(4), converters_per_core=4)
        pdn.apply_faults(FaultPlan().open_converter_bank("sc.rail1"))
        result = pdn.solve(
            layer_activities=interleaved_layer_activities(4, 1.0)
        )
        # Violations on a fault-injected network are capped at "record":
        # no warning, no exception, but the report keeps the evidence.
        assert result.contracts is not None
        assert result.contracts.degraded
        assert not result.contracts.passed  # this workload does violate
        for check in result.contracts.checks:
            assert check.severity == "record"
        assert not any(
            isinstance(w.message, ContractWarning) for w in recwarn.list
        )

    def test_em_monotonicity_holds(self):
        report = check_em_monotonicity()
        assert report.passed
        assert report.checks[0].name == "em_mttf_monotone"

    def test_check_pdn_result_degraded_hint(self, stacked_result):
        report = check_pdn_result(stacked_result, degraded=True)
        assert report.degraded


# ----------------------------------------------------------------------
# graceful degradation of the hardened loops (satellite: divergence paths)
# ----------------------------------------------------------------------
class _FlipFlopPolicy:
    """Pathological controller: frequency alternates every evaluation."""

    def __init__(self):
        self.calls = 0

    @property
    def name(self):
        return "flip-flop"

    def frequency(self, spec, load_current):
        self.calls += 1
        return spec.switching_frequency * (1.0 if self.calls % 2 else 0.25)


class TestLoopDegradation:
    def test_oscillating_closed_loop_degrades_not_crashes(self, small_stack):
        solver = ClosedLoopSystemSolver(
            small_stack, converters_per_core=4, policy=_FlipFlopPolicy()
        )
        solved = solver.solve(layer_activities=[1.0, 0.2])
        assert not solved.converged
        assert solved.degraded
        assert solved.oscillating
        # The best-residual operating point is still usable.
        assert solved.result is not None
        assert 0.0 < solved.result.efficiency() <= 1.0
        assert len(solved.residual_trace) == solved.iterations

    def test_thermally_unstable_stack_raise_policy(self):
        loop = LeakageThermalLoop(
            _stack(8),
            ThermalConfig(sink_resistance=1.5),
            leakage_temp_coefficient=0.12,
        )
        with pytest.raises(ThermalRunawayError, match="leakage exploded"):
            loop.converge()

    def test_thermally_unstable_stack_degrade_policy(self):
        loop = LeakageThermalLoop(
            _stack(8),
            ThermalConfig(sink_resistance=1.5),
            leakage_temp_coefficient=0.12,
        )
        point = loop.converge(policy="degrade")
        assert point.degraded and not point.converged
        assert point.power_maps and point.thermal is not None
        assert np.isfinite(point.total_power)

    def test_thermal_policy_validated(self):
        loop = LeakageThermalLoop(_stack(2))
        with pytest.raises(ValueError, match="policy"):
            loop.converge(policy="ignore")

    def test_stable_thermal_loop_still_converges(self):
        point = LeakageThermalLoop(_stack(2)).converge()
        assert point.converged and not point.degraded
        assert np.isfinite(point.leakage_uplift)

    def test_regulator_settle_converges(self):
        from repro.config.converters import default_sc_spec
        from repro.regulator.compact import SCCompactModel
        from repro.regulator.control import ClosedLoopControl

        model = SCCompactModel(default_sc_spec())
        settled = ClosedLoopControl().settle(
            model, v_top=2.0, v_bottom=0.0, load_power=0.05
        )
        assert settled.converged and not settled.degraded
        op = settled.operating_point
        # Self-consistency: the accepted current reproduces the power.
        assert settled.load_current * op.output_voltage == pytest.approx(
            0.05, rel=1e-6
        )


# ----------------------------------------------------------------------
# engine and supervisor roll-ups
# ----------------------------------------------------------------------
class TestContractMetrics:
    def test_engine_histogram_counts_faulted_points(self):
        from repro.runtime import PDNSpec, SweepEngine, SweepPoint
        from repro.workload.imbalance import interleaved_layer_activities

        spec = PDNSpec.stacked(4, converters_per_core=4, grid_nodes=TEST_GRID)
        plan = FaultPlan().open_converter_bank("sc.rail1")
        points = [
            SweepPoint(
                spec=spec,
                layer_activities=tuple(interleaved_layer_activities(4, imb)),
                fault_plan=plan,
            )
            for imb in (0.0, 1.0)
        ]
        run = SweepEngine().run(points)
        histogram = run.metrics.contract_histogram()
        assert histogram.get("pass", 0) > 0
        assert run.metrics.contracts_s >= 0.0
        payload = run.metrics.to_json()
        assert payload["schema"] == 8
        assert payload["contracts"] == histogram

    def test_supervisor_report_carries_histogram(self, tmp_path):
        from repro.runtime import (
            PDNSpec,
            RunSupervisor,
            SupervisorConfig,
            SweepPoint,
        )

        supervisor = RunSupervisor(
            config=SupervisorConfig(run_dir=str(tmp_path / "run"))
        )
        supervised = supervisor.run(
            [SweepPoint(spec=PDNSpec.stacked(2, grid_nodes=TEST_GRID))]
        )
        report = supervised.report
        assert report.contract_histogram.get("pass", 0) > 0
        assert report.to_json()["contracts"] == report.contract_histogram
