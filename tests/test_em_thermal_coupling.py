"""Temperature-coupled EM lifetime (extension)."""

import numpy as np
import pytest

from repro.core.scenarios import build_regular_pdn, build_stacked_pdn
from repro.em.thermal_coupling import (
    group_temperatures,
    median_lifetimes_at_temperature,
    thermally_coupled_lifetime,
    uniform_temperature_lifetime,
)
from repro.thermal import HotSpotLite, ThermalConfig

GRID = 8


@pytest.fixture(scope="module")
def solved():
    pdn = build_regular_pdn(4, grid_nodes=GRID)
    result = pdn.solve()
    thermal = HotSpotLite(pdn.stack).solve()
    return result, thermal


class TestTemperatureScaling:
    def test_hotter_is_shorter(self):
        currents = np.full(10, 0.05)
        from repro.em.black import TSV_CROSS_SECTION

        cool = median_lifetimes_at_temperature(currents, TSV_CROSS_SECTION, 60.0)
        hot = median_lifetimes_at_temperature(currents, TSV_CROSS_SECTION, 100.0)
        assert np.all(hot < cool)

    def test_arrhenius_ratio(self):
        """exp(Ea/kT) ratio between two temperatures."""
        import math

        from repro.config.technology import BOLTZMANN_EV, default_em
        from repro.em.black import TSV_CROSS_SECTION

        em = default_em()
        t1, t2 = 60.0 + 273.15, 100.0 + 273.15
        expected = math.exp(
            em.activation_energy / BOLTZMANN_EV * (1 / t1 - 1 / t2)
        )
        cool = median_lifetimes_at_temperature(
            np.array([0.05]), TSV_CROSS_SECTION, 60.0, em
        )
        hot = median_lifetimes_at_temperature(
            np.array([0.05]), TSV_CROSS_SECTION, 100.0, em
        )
        assert cool[0] / hot[0] == pytest.approx(expected, rel=1e-9)


class TestGroupTemperatures:
    def test_pads_at_bottom_layer_temperature(self, solved):
        result, thermal = solved
        temps = group_temperatures(result, thermal)
        bottom = float(thermal.layer_temperatures[0].mean())
        assert temps["c4.vdd"] == pytest.approx(bottom)

    def test_tiers_between_their_layers(self, solved):
        result, thermal = solved
        temps = group_temperatures(result, thermal)
        layer_means = [float(t.mean()) for t in thermal.layer_temperatures]
        expected = 0.5 * (layer_means[1] + layer_means[2])
        assert temps["tsv.vdd.t1"] == pytest.approx(expected)

    def test_lower_tiers_hotter(self, solved):
        result, thermal = solved
        temps = group_temperatures(result, thermal)
        assert temps["tsv.vdd.t0"] > temps["tsv.vdd.t2"]

    def test_vs_rail_tags_mapped(self):
        pdn = build_stacked_pdn(4, grid_nodes=GRID)
        result = pdn.solve()
        thermal = HotSpotLite(pdn.stack).solve()
        temps = group_temperatures(result, thermal)
        assert "tsv.rail1" in temps
        assert "tvia.vdd" in temps


class TestCoupledLifetime:
    def test_cooler_than_worstcase_assumption_lives_longer(self, solved):
        """The air-cooled stack runs below the 105 C rating point, so the
        coupled lifetime exceeds the paper's fixed-temperature one."""
        result, thermal = solved
        coupled = thermally_coupled_lifetime(result, thermal, "tsv")
        uniform_105 = uniform_temperature_lifetime(result, 105.0, "tsv")
        assert coupled > uniform_105

    def test_coupled_below_uniform_coolest(self, solved):
        """Bounded by evaluating everything at the coolest tier."""
        result, thermal = solved
        coolest = min(float(t.min()) for t in thermal.layer_temperatures)
        coupled = thermally_coupled_lifetime(result, thermal, "tsv")
        bound = uniform_temperature_lifetime(result, coolest, "tsv")
        assert coupled <= bound

    def test_hotter_cooling_config_shortens_life(self):
        pdn = build_regular_pdn(4, grid_nodes=GRID)
        result = pdn.solve()
        cool = HotSpotLite(pdn.stack, ThermalConfig(sink_resistance=0.05)).solve()
        hot = HotSpotLite(pdn.stack, ThermalConfig(sink_resistance=0.5)).solve()
        assert thermally_coupled_lifetime(result, hot, "tsv") < thermally_coupled_lifetime(
            result, cool, "tsv"
        )

    def test_c4_kind(self, solved):
        result, thermal = solved
        assert thermally_coupled_lifetime(result, thermal, "c4") > 0

    def test_unknown_kind_rejected(self, solved):
        result, thermal = solved
        with pytest.raises(ValueError):
            thermally_coupled_lifetime(result, thermal, "bondwire")
