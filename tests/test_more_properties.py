"""Second round of property-based tests across the substrates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.heatmap import DEFAULT_RAMP, ascii_heatmap
from repro.analysis.tables import format_table
from repro.config.stackups import ProcessorSpec
from repro.regulator.charge_multipliers import dickson, ladder, series_parallel
from repro.regulator.compact import SCCompactModel
from repro.workload.gem5_lite import GEM5_WORKLOADS


class TestHeatmapProperties:
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_renders_any_field(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        field = rng.uniform(-5, 5, size=(rows, cols))
        text = ascii_heatmap(field)
        body = text.splitlines()[:-1]
        assert len(body) == rows
        assert all(len(line) == cols for line in body)
        assert all(ch in DEFAULT_RAMP for line in body for ch in line)

    @given(st.floats(min_value=-100, max_value=100))
    @settings(max_examples=25, deadline=None)
    def test_constant_fields_render_cold(self, value):
        text = ascii_heatmap(np.full((2, 3), value))
        assert text.splitlines()[0] == DEFAULT_RAMP[0] * 3


class TestTableProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=-999, max_value=999),
                st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            ),
            min_size=0,
            max_size=10,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_rows_align(self, rows):
        text = format_table(["a", "b"], rows)
        lines = text.splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # perfectly rectangular output


class TestChargeMultiplierProperties:
    @given(st.integers(min_value=2, max_value=12))
    @settings(max_examples=30, deadline=None)
    def test_sums_positive_and_ordered(self, ratio):
        sp = series_parallel(ratio)
        la = ladder(ratio)
        dk = dickson(ratio)
        for t in (sp, la, dk):
            assert t.sum_ac > 0 and t.sum_ar > 0
        # Ladder SSL never beats series-parallel (equal at N=2).
        assert la.sum_ac >= sp.sum_ac - 1e-12

    @given(
        st.integers(min_value=2, max_value=8),
        st.floats(min_value=1e-9, max_value=1e-7),
        st.floats(min_value=1e6, max_value=1e9),
    )
    @settings(max_examples=30, deadline=None)
    def test_rssl_scaling_laws(self, ratio, cap, fsw):
        t = series_parallel(ratio)
        assert t.r_ssl(2 * cap, fsw) == pytest.approx(t.r_ssl(cap, fsw) / 2)
        assert t.r_ssl(cap, 2 * fsw) == pytest.approx(t.r_ssl(cap, fsw) / 2)


class TestConverterModelProperties:
    @given(
        st.floats(min_value=1.2, max_value=4.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.001, max_value=0.1),
    )
    @settings(max_examples=40, deadline=None)
    def test_operating_point_consistency(self, v_in, v_bottom_frac, load):
        model = SCCompactModel()
        v_bottom = v_bottom_frac
        v_top = v_bottom + v_in
        op = model.operating_point(v_top, v_bottom, load)
        assert op.ideal_output_voltage == pytest.approx((v_top + v_bottom) / 2)
        assert op.input_power >= op.output_power
        assert 0.0 <= op.efficiency <= 1.0

    @given(st.floats(min_value=0.005, max_value=0.1))
    @settings(max_examples=30, deadline=None)
    def test_sourcing_and_sinking_symmetric_losses(self, load):
        model = SCCompactModel()
        source = model.operating_point(2.0, 0.0, load)
        sink = model.operating_point(2.0, 0.0, -load)
        assert source.series_loss == pytest.approx(sink.series_loss)
        assert source.parasitic_loss == pytest.approx(sink.parasitic_loss)


class TestGem5Properties:
    @given(st.sampled_from(sorted(GEM5_WORKLOADS)), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_cpi_monotone_in_miss_rate(self, name, seed):
        w = GEM5_WORKLOADS[name]
        rng = np.random.default_rng(seed)
        a, b = sorted(rng.uniform(0.0, 0.2, size=2))
        assert w.cpi(a) <= w.cpi(b) + 1e-12

    @given(st.sampled_from(sorted(GEM5_WORKLOADS)))
    @settings(max_examples=13, deadline=None)
    def test_phase_extremes_bound_the_windows(self, name):
        from repro.workload.gem5_lite import simulate_activity_windows

        w = GEM5_WORKLOADS[name]
        acts = simulate_activity_windows(w, 300, rng=7)
        lo = w.activity(w.miss_rate_high)
        hi = w.activity(w.miss_rate_low)
        # Jitter is lognormal-small; windows stay near the phase band
        # (clipped to the physical [0, 1] activity range).
        assert acts.min() > lo * 0.7
        assert acts.max() <= min(1.0, hi * 1.3)


class TestProcessorProperties:
    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_layer_power_affine(self, activity):
        proc = ProcessorSpec()
        expected = proc.leakage_power + activity * proc.dynamic_power
        assert proc.layer_power(activity) == pytest.approx(expected)
