"""Fig. 3 experiment driver: validation sweeps."""

import pytest

from repro.core.experiments.fig3 import (
    CLOSED_LOOP_LOADS,
    OPEN_LOOP_LOADS,
    compute_fig3,
)


@pytest.fixture(scope="module")
def result():
    return compute_fig3()


class TestFig3:
    def test_sweep_lengths(self, result):
        assert len(result.closed_loop) == len(CLOSED_LOOP_LOADS)
        assert len(result.open_loop) == len(OPEN_LOOP_LOADS)

    def test_model_tracks_simulation(self, result):
        """The paper's claim: the compact model accurately captures both
        metrics for both policies."""
        assert result.max_efficiency_error() < 0.10
        assert result.max_vdrop_error() < 5e-3

    def test_open_loop_efficiency_range(self, result):
        """Fig. 3b: efficiency climbs from ~50% to ~85% over 10-90 mA."""
        effs = [p.efficiency_sim for p in result.open_loop]
        assert effs[0] < 0.60
        assert effs[-1] > 0.75
        assert effs == sorted(effs)

    def test_open_loop_vdrop_linear(self, result):
        """Fig. 3b droop is RSERIES-linear: ~6 mV at 10 mA, ~55 mV at 90."""
        drops = [p.vdrop_sim for p in result.open_loop]
        assert drops[0] == pytest.approx(6e-3, abs=2e-3)
        assert drops[-1] == pytest.approx(55e-3, abs=8e-3)

    def test_closed_loop_flat_high_efficiency(self, result):
        """Fig. 3a: closed loop keeps light-load efficiency much higher
        than open loop at the same current."""
        closed_light = result.closed_loop[2]  # 6.3 mA
        open_equiv_eff = 0.35  # open loop at ~6 mA is well below this
        assert closed_light.efficiency_sim > open_equiv_eff

    def test_closed_loop_frequencies_scale(self, result):
        freqs = [p.switching_frequency for p in result.closed_loop]
        assert freqs == sorted(freqs)
        assert freqs[-1] == pytest.approx(50e6)

    def test_format_contains_both_panels(self, result):
        text = result.format()
        assert "Fig. 3a" in text and "Fig. 3b" in text
